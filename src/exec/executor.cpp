#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/campaign.h"
#include "exec/journal.h"
#include "fault/model.h"
#include "forensics/signature.h"
#include "obs/fleet/span.h"
#include "obs/fleet/stall.h"
#include "obs/fleet/status.h"
#include "plan/checkpoints.h"
#include "sim/rng.h"
#include "snap/fork_runner.h"

namespace dts::exec {

namespace {

// Per-fault completion state. kElided marks faults a worker proved safe to
// skip (an already-executed earlier fault showed the function uncalled); the
// merge step synthesizes their serial skip records.
enum class SlotState : std::uint8_t { kPending, kExecuted, kElided };

struct Slot {
  core::RunResult result;
  bool fn_called = false;
  SlotState state = SlotState::kPending;
};

core::RunResult skipped_result(const inject::FaultSpec& fault) {
  core::RunResult r;
  r.fault = fault;
  r.activated = false;
  r.detail = "skipped: function not called by this workload";
  return r;
}

bool forensics_wanted(obs::TraceMode mode, const core::RunResult& r) {
  switch (mode) {
    case obs::TraceMode::kOff: return false;
    case obs::TraceMode::kAll: return true;
    case obs::TraceMode::kFailures:
      return r.outcome == core::Outcome::kFailure || r.restarts > 0;
  }
  return false;
}

/// Journal schema version for this campaign: classic campaigns stay v5
/// byte-for-byte, untraced topology campaigns stay v6 byte-for-byte, and only
/// topology campaigns with request tracing enabled mint v7 (the "rt" trailer).
std::uint64_t journal_version(const core::RunConfig& base) {
  if (base.topo.empty()) return 5;
  return base.rtrace == obs::rtrace::RtraceMode::kOff ? 6 : 7;
}

/// Whether this run's trace is journaled. kFailures keeps the journal lean:
/// only runs that failed outright or whose users saw degraded service carry
/// their span tree (masked runs still contributed to the path digest axis of
/// live signatures, which needs no journal bytes).
bool rtrace_wanted(obs::rtrace::RtraceMode mode, const core::RunResult& r) {
  switch (mode) {
    case obs::rtrace::RtraceMode::kOff: return false;
    case obs::rtrace::RtraceMode::kAll: return true;
    case obs::rtrace::RtraceMode::kFailures:
      return r.outcome == core::Outcome::kFailure ||
             (r.topo && r.topo->user_outcome != "masked");
  }
  return false;
}

std::vector<std::string> forensics_context(const core::RunResult& r) {
  std::vector<std::string> out;
  std::string line = "outcome: ";
  line += outcome_label(r.outcome);
  if (r.outcome == core::Outcome::kFailure) {
    line += r.response_received ? " (wrong response)" : " (no response)";
  }
  out.push_back(std::move(line));
  out.push_back(std::string("activated: ") + (r.activated ? "yes" : "no"));
  out.push_back("response_time: " + sim::to_string(r.response_time) +
                "  sim_elapsed: " + sim::to_string(r.sim_elapsed));
  out.push_back("restarts: " + std::to_string(r.restarts) +
                "  retries: " + std::to_string(r.retries));
  if (!r.detail.empty()) out.push_back("detail: " + r.detail);
  return out;
}

/// True when a journal record's execution index names a different campaign
/// digest — merging it on resume would silently mix another campaign's
/// results into this one. Records without an index (v1/v2 journals, or a
/// corrupted field) pass: the JournalKey header check already vouched for
/// them at file granularity.
bool foreign_record(const JournalRecord& rec, std::uint64_t campaign_digest) {
  if (rec.exec_index.empty()) return false;
  const auto ei = obs::fleet::ExecutionIndex::parse(rec.exec_index);
  return ei && ei->campaign_digest != campaign_digest;
}

void warn_foreign_records(const std::string& path, std::size_t foreign,
                          obs::MetricsRegistry* metrics) {
  if (foreign == 0) return;
  std::cerr << "warning: " << path << ": skipped " << foreign
            << " journal record(s) whose execution index names a foreign "
               "campaign digest\n";
  if (metrics != nullptr) {
    metrics
        ->counter("dts_report_foreign_records_total", {},
                  "journal records skipped for carrying a foreign campaign "
                  "digest in their execution index")
        .inc(foreign);
  }
}

/// Signature/status bookkeeping shared by every record path: stamps the
/// run's failure signature (src/forensics/) into the live status board.
void record_status_signature(obs::fleet::StatusBoard* status,
                             const core::RunResult& result,
                             const std::string& call_context,
                             const std::string& fault_id,
                             const std::string& exec_index) {
  if (status == nullptr) return;
  const forensics::SignatureKey key = forensics::signature_of(result, call_context);
  obs::fleet::SignatureEntry sig;
  sig.id = forensics::signature_id(key);
  sig.fault_class = key.fault_class;
  sig.call_context = key.call_context;
  sig.outcome = key.outcome;
  sig.span = key.span;
  sig.example_fault = fault_id;
  sig.example_xi = exec_index;
  status->record_signature(sig);
  if (result.topo) {
    status->record_topology(result.topo->tier, result.topo->user_outcome);
  }
  if (result.rtrace) {
    obs::fleet::TraceEntry tr;
    tr.fault_id = fault_id;
    tr.tier = result.topo ? result.topo->tier : "";
    tr.user_outcome = result.topo ? result.topo->user_outcome : "";
    tr.digest = obs::rtrace::digest_hex(result.rtrace->digest);
    tr.spans = result.rtrace->spans.size();
    tr.requests = result.rtrace->requests.size();
    tr.injected = result.rtrace->injected_span != 0;
    status->record_trace(std::move(tr));
  }
}

/// File name for an on-disk forensics dump: fault ids contain '.'/'#'/':',
/// which stay readable, but nothing path-hostile survives.
std::string forensics_file_name(std::size_t index, const std::string& fault_id) {
  std::string name = "run-" + std::to_string(index) + "-";
  for (char c : fault_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '#' || c == '-' ||
                    c == '_';
    name += ok ? c : '_';
  }
  return name + ".txt";
}

// Deterministic initial sharding with range stealing: worker w starts with a
// contiguous slice of the work items; a worker whose slice runs dry steals
// the tail half of the fattest remaining slice. All bookkeeping sits behind
// one mutex — at milliseconds per simulated run the lock is invisible, and
// the shared state stays trivially correct (results never depend on who ran
// what; see the merge step).
class ShardQueue {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  ShardQueue(std::size_t item_count, int workers)
      : ranges_(workers), remaining_(item_count) {
    for (int w = 0; w < workers; ++w) {
      ranges_[w].next = item_count * static_cast<std::size_t>(w) / workers;
      ranges_[w].end = item_count * (static_cast<std::size_t>(w) + 1) / workers;
    }
  }

  /// Optional observability hooks, set before workers start: `steals` counts
  /// range-stealing events, `depth` tracks unclaimed items. Updated under
  /// the queue mutex (handle updates themselves are relaxed atomics).
  void set_metrics(obs::Counter* steals, obs::Gauge* depth) {
    steals_ = steals;
    depth_ = depth;
    if (depth_ != nullptr) depth_->set(static_cast<double>(remaining_));
  }

  /// Next item for `worker`, stealing if its own range is exhausted;
  /// npos when no work is left anywhere.
  std::size_t pop(int worker) {
    std::lock_guard<std::mutex> lock(mu_);
    Range& own = ranges_[worker];
    if (own.next < own.end) return take(own);
    Range* victim = nullptr;
    std::size_t victim_size = 0;
    for (Range& r : ranges_) {
      const std::size_t size = r.end - r.next;
      if (size > victim_size) {
        victim = &r;
        victim_size = size;
      }
    }
    if (victim == nullptr) return npos;
    const std::size_t half = (victim_size + 1) / 2;
    own.end = victim->end;
    own.next = victim->end - half;
    victim->end = own.next;
    if (steals_ != nullptr) steals_->inc();
    return take(own);
  }

 private:
  struct Range {
    std::size_t next = 0;
    std::size_t end = 0;
  };

  std::size_t take(Range& r) {
    --remaining_;
    if (depth_ != nullptr) depth_->set(static_cast<double>(remaining_));
    return r.next++;
  }

  std::mutex mu_;
  std::vector<Range> ranges_;
  std::size_t remaining_ = 0;
  obs::Counter* steals_ = nullptr;
  obs::Gauge* depth_ = nullptr;
};

// fn -> lowest fault index whose *executed* run proved the function uncalled.
// A worker may elide fault i only given a proof at index j < i: that is
// exactly the information the serial sweep has when it reaches i, which makes
// elision schedule-independent (an executed-but-serially-skipped run is
// discarded by the merge; a proof the serial sweep would have had always
// exists by induction over j).
class UncalledProofs {
 public:
  void record(nt::Fn fn, std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = proofs_.emplace(fn, index);
    if (!inserted && index < it->second) it->second = index;
  }

  bool proven_before(nt::Fn fn, std::size_t index) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = proofs_.find(fn);
    return it != proofs_.end() && it->second < index;
  }

 private:
  mutable std::mutex mu_;
  std::map<nt::Fn, std::size_t> proofs_;
};

core::RunResult execute_fault(const core::RunConfig& base, std::uint64_t campaign_seed,
                              const inject::FaultSpec& fault, bool* fn_called) {
  core::RunConfig cfg = base;
  cfg.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(fault.id()));
  core::FaultInjectionRun run(cfg);
  core::RunResult r = run.execute(fault);
  *fn_called = run.interceptor().target_function_called();
  return r;
}

// True when the campaign may route runs through the snapshot/fork phase.
// The phase costs one host golden run, so a single pending fault never pays.
bool snapshot_phase_applicable(const ExecOptions& options, const core::RunConfig& base,
                               std::size_t pending) {
  return options.snapshots && options.snapshot_profile != nullptr && pending >= 2 &&
         snap::unsupported_reason(base, options.trace != obs::TraceMode::kOff).empty();
}

// Latest golden call site (max syscall seq the profile observed) — the
// checkpoint that lets profile-proven never-firing faults replay only the
// run's tail.
std::uint64_t profile_tail_site(const plan::GoldenProfile& profile) {
  std::uint64_t tail = 0;
  for (const auto& [fn, calls] : profile.calls) {
    for (const plan::GoldenCall& c : calls) tail = std::max(tail, c.call_site);
  }
  return tail;
}

void emit_snap_metrics(obs::MetricsRegistry* metrics, const obs::Labels& set_labels,
                       const snap::ForkStats& st) {
  if (metrics == nullptr) return;
  metrics->counter("dts_snap_checkpoints_total", set_labels,
                   "checkpoints planned across host golden runs")
      .inc(st.checkpoints_planned);
  metrics->counter("dts_snap_snapshots_total", set_labels,
                   "COW world snapshots captured at checkpoints")
      .inc(st.snapshots_taken);
  metrics->counter("dts_snap_forked_runs_total", set_labels,
                   "campaign runs executed as forked snapshot children")
      .inc(st.forked_runs);
  metrics->counter("dts_snap_synthesized_runs_total", set_labels,
                   "never-firing runs synthesized from the host golden run")
      .inc(st.synthesized_runs);
  metrics->counter("dts_snap_fallback_runs_total", set_labels,
                   "snapshot-phase runs that fell back to full execution")
      .inc(st.fallback_runs);
  metrics->counter("dts_snap_identity_checks_total", set_labels,
                   "snapshot-identity validations (child pre-arm + parent self-check)")
      .inc(st.identity_checks);
  metrics->counter("dts_snap_cow_violations_total", set_labels,
                   "snapshot digests invalidated by in-place payload mutation")
      .inc(st.cow_violations);
  metrics->counter("dts_snap_shared_blocks_total", set_labels,
                   "memory/file payloads structure-shared at capture")
      .inc(st.shared_blocks);
  metrics->counter("dts_snap_copied_blocks_total", set_labels,
                   "memory/file payloads deep-copied at capture")
      .inc(st.copied_blocks);
  metrics->counter("dts_snap_shared_bytes_total", set_labels,
                   "payload bytes structure-shared at capture")
      .inc(st.shared_bytes);
  metrics->counter("dts_snap_copied_bytes_total", set_labels,
                   "payload bytes deep-copied at capture")
      .inc(st.copied_bytes);
  metrics->counter("dts_snap_skipped_sim_us_total", set_labels,
                   "golden-prefix simulated microseconds not re-executed")
      .inc(st.skipped_sim_us);
}

// Executes the snapshot/fork phase and returns the indices that still need a
// full run. `record` fires once per forked result, in deterministic fork
// order, on the calling thread.
std::vector<std::size_t> run_snapshot_phase(
    const core::RunConfig& base, const ExecOptions& options,
    std::uint64_t campaign_seed, std::uint64_t campaign_digest,
    std::uint64_t tail_site, const std::vector<snap::ForkItem>& items,
    const std::function<void(const snap::ChildOutcome&)>& record,
    const obs::Labels& set_labels) {
  snap::ForkRunner::Options ropts;
  ropts.campaign_seed = campaign_seed;
  ropts.campaign_digest = campaign_digest;
  ropts.max_checkpoints = options.snapshot_max_checkpoints;
  ropts.jobs = effective_jobs(options.jobs);
  ropts.tail_site = tail_site;
  snap::ForkRunner runner(base, ropts);
  std::vector<std::size_t> fallback = runner.run(items, record);
  emit_snap_metrics(options.metrics, set_labels, runner.stats());
  return fallback;
}

}  // namespace

std::string_view outcome_label(core::Outcome o) {
  switch (o) {
    case core::Outcome::kNormalSuccess: return "normal";
    case core::Outcome::kRestartSuccess: return "restart";
    case core::Outcome::kRestartRetrySuccess: return "restart_retry";
    case core::Outcome::kRetrySuccess: return "retry";
    case core::Outcome::kFailure: return "failure";
  }
  return "?";
}

std::string middleware_label(const core::RunConfig& base) {
  switch (base.middleware) {
    case mw::MiddlewareKind::kNone: return "none";
    case mw::MiddlewareKind::kMscs: return "mscs";
    case mw::MiddlewareKind::kWatchd:
      return "watchd" + std::to_string(static_cast<int>(base.watchd_version));
  }
  return "?";
}

int effective_jobs(int jobs, unsigned hardware_threads) {
  if (jobs >= 1) return jobs;
  return hardware_threads >= 1 ? static_cast<int>(hardware_threads) : 1;
}

int effective_jobs(int jobs) {
  return effective_jobs(jobs, std::thread::hardware_concurrency());
}

CampaignResult merge_completed_runs(const core::RunConfig& base,
                                    const inject::FaultList& list,
                                    std::uint64_t campaign_seed, bool skip_uncalled,
                                    std::vector<CompletedRun> completed) {
  const std::size_t n = list.faults.size();
  CampaignResult out;
  std::set<nt::Fn> uncalled;
  out.runs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const inject::FaultSpec& fault = list.faults[i];
    if (skip_uncalled && uncalled.contains(fault.fn)) {
      out.runs.push_back(skipped_result(fault));
      ++out.skipped;
      continue;
    }
    CompletedRun& slot = completed[i];
    if (!slot.executed) {
      // Defensive: an elided fault always has an earlier uncalled proof, so
      // this branch is unreachable unless that invariant breaks — in which
      // case run the fault now rather than emit a wrong record.
      slot.result = execute_fault(base, campaign_seed, fault, &slot.fn_called);
      slot.executed = true;
      ++out.executed;
    }
    if (!slot.result.activated && !slot.fn_called) uncalled.insert(fault.fn);
    out.runs.push_back(std::move(slot.result));
  }
  return out;
}

CampaignResult CampaignExecutor::run(const core::RunConfig& base,
                                     const inject::FaultList& list,
                                     std::uint64_t campaign_seed) {
  const std::size_t n = list.faults.size();
  CampaignResult out;
  std::vector<Slot> slots(n);

  JournalKey key;
  key.workload = base.workload.name;
  key.middleware = static_cast<int>(base.middleware);
  key.watchd_version = static_cast<int>(base.watchd_version);
  key.seed = campaign_seed;
  key.fault_count = n;

  // Causal span: every journal record, forensics dump and trace event names
  // its run as campaign_digest/lease_id/fault_index (lease 0 = in-process),
  // the same identifier a distributed worker's record carries — so a record
  // can be traced back to its campaign and shard from any artifact.
  const std::uint64_t campaign_digest = plan::sweep_digest(list);

  UncalledProofs proofs;

  if (!options_.journal_path.empty() && options_.resume) {
    std::string error;
    auto records = read_journal(options_.journal_path, key, &error);
    if (!records) throw std::runtime_error(error);
    std::size_t foreign = 0;
    for (const auto& rec : *records) {
      if (rec.index >= n) continue;
      if (list.faults[rec.index].id() != rec.fault_id) continue;
      if (foreign_record(rec, campaign_digest)) {
        ++foreign;
        continue;
      }
      Slot& slot = slots[rec.index];
      if (slot.state != SlotState::kPending) continue;  // duplicate record
      if (!core::parse_run_line(base.workload.target_image, rec.run_line, &slot.result,
                                nullptr)) {
        continue;
      }
      slot.fn_called = rec.fn_called;
      slot.state = SlotState::kExecuted;
      if (!slot.result.activated && !slot.fn_called) {
        proofs.record(list.faults[rec.index].fn, rec.index);
      }
      ++out.reused;
    }
    warn_foreign_records(options_.journal_path, foreign, options_.metrics);
  }

  RunJournal journal;
  if (!options_.journal_path.empty()) {
    std::string error;
    if (!journal.open(options_.journal_path, key, options_.resume, &error,
                      options_.config_text, journal_version(base))) {
      throw std::runtime_error(error);
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(n - out.reused);
  for (std::size_t i = 0; i < n; ++i) {
    if (slots[i].state == SlotState::kPending) pending.push_back(i);
  }

  // Observability: resolve every per-campaign metric handle once — outcome
  // counters, per-function activation counters, the histograms — so the
  // worker hot loop only does relaxed atomic updates. Registry lookups
  // (label rendering + a mutex + a map walk) cost tens of microseconds and
  // would otherwise eat the "near-zero overhead" budget on short runs; only
  // rare events (middleware spans) still look up lazily.
  obs::MetricsRegistry* metrics = options_.metrics;
  const obs::Labels set_labels = {{"workload", base.workload.name},
                                  {"middleware", middleware_label(base)}};
  obs::Histogram* resp_hist = nullptr;
  obs::Histogram* wall_hist = nullptr;
  std::map<core::Outcome, obs::Counter*> outcome_counters;
  std::map<nt::Fn, obs::Counter*> activation_counters;
  if (metrics != nullptr) {
    resp_hist = &metrics->histogram("dts_response_time_seconds", set_labels,
                                    obs::response_time_buckets(),
                                    "client response time per run (seconds)");
    wall_hist = &metrics->histogram("dts_run_wall_seconds", set_labels,
                                    obs::wall_time_buckets(),
                                    "host wall-clock time per executed run (seconds)");
    for (core::Outcome o :
         {core::Outcome::kNormalSuccess, core::Outcome::kRestartSuccess,
          core::Outcome::kRestartRetrySuccess, core::Outcome::kRetrySuccess,
          core::Outcome::kFailure}) {
      obs::Labels run_labels = set_labels;
      run_labels.emplace_back("outcome", std::string(outcome_label(o)));
      outcome_counters[o] =
          &metrics->counter("dts_runs_total", run_labels, "executed runs by outcome");
    }
    for (const inject::FaultSpec& fault : list.faults) {
      if (!activation_counters.contains(fault.fn)) {
        activation_counters[fault.fn] = &metrics->counter(
            "dts_activations_total", {{"fn", std::string(nt::to_string(fault.fn))}},
            "fired faults per injection-site function");
      }
    }
  }
  if (options_.trace != obs::TraceMode::kOff && !options_.forensics_dir.empty()) {
    std::filesystem::create_directories(options_.forensics_dir);
  }

  ProgressTracker tracker(n, out.reused);

  // --- snapshot/fork phase ---------------------------------------------------
  // One host golden run captures COW snapshots at planned checkpoints; each
  // fault whose injection site the profile resolves forks from the nearest
  // checkpoint and executes only the suffix. Results are recorded exactly as
  // the worker loop records a full run (the merge below then guarantees
  // byte-identical campaign output either way); whatever cannot be forked
  // stays in `pending` for the thread pool.
  if (snapshot_phase_applicable(options_, base, pending.size()) &&
      (options_.cancel == nullptr ||
       !options_.cancel->load(std::memory_order_relaxed))) {
    const plan::GoldenProfile& profile = *options_.snapshot_profile;
    const std::uint64_t tail_site = profile_tail_site(profile);
    std::vector<snap::ForkItem> items;
    std::vector<std::size_t> next_pending;
    for (std::size_t i : pending) {
      const inject::FaultSpec& fault = list.faults[i];
      snap::ForkItem item;
      item.index = i;
      item.fault = fault;
      item.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(fault.id()));
      if (auto site = plan::injection_site(profile, fault)) {
        item.mode = snap::ForkItem::Mode::kAtSite;
        item.site = *site;
        items.push_back(item);
        continue;
      }
      const auto cnt = profile.invocation_counts.find(fault.fn);
      const int count = cnt == profile.invocation_counts.end() ? 0 : cnt->second;
      if (tail_site > 0 && fault.invocation > count) {
        // Profile-proven never-firing: the run IS the golden run; its result
        // is synthesized from the host run's end state.
        item.mode = snap::ForkItem::Mode::kGoldenTail;
        item.fn_called = count > 0;
        items.push_back(item);
        continue;
      }
      // Reached but outside the profile's capture window: full run.
      next_pending.push_back(i);
    }
    if (!items.empty()) {
      auto record = [&](const snap::ChildOutcome& o) {
        const std::size_t i = o.index;
        const inject::FaultSpec& fault = list.faults[i];
        const std::string fault_id = fault.id();
        Slot& slot = slots[i];
        slot.result = o.result;
        slot.fn_called = o.fn_called;
        slot.state = SlotState::kExecuted;
        if (!slot.result.activated && !slot.fn_called) proofs.record(fault.fn, i);
        const double wall_s = static_cast<double>(o.wall_us) * 1e-6;
        const std::string exec_index =
            obs::fleet::ExecutionIndex{campaign_digest, 0, i}.to_string();
        if (journal.is_open()) {
          JournalRecord rec;
          rec.index = i;
          rec.fault_id = fault_id;
          rec.fn_called = slot.fn_called;
          rec.run_line = core::serialize_run_line(slot.result);
          rec.wall_us = o.wall_us;
          rec.sim_us =
              static_cast<std::uint64_t>(slot.result.sim_elapsed.count_micros());
          rec.exec_index = exec_index;
          rec.trace_digest = o.trace_digest;
          rec.call_context = o.call_context;
          rec.model = fault::model_annotation(fault);
          rec.tier = fault.tier;
          if (slot.result.rtrace && rtrace_wanted(base.rtrace, slot.result)) {
            rec.rtrace = slot.result.rtrace->serialize();
          }
          journal.append(rec);
        }
        if (options_.stall != nullptr) {
          options_.stall->observe(plan::StratumKey{fault.fn, fault.type}, wall_s,
                                  fault_id, exec_index);
        }
        if (options_.status != nullptr) {
          obs::fleet::RunEntry entry;
          entry.index = i;
          entry.fault_id = fault_id;
          entry.outcome = std::string(outcome_label(slot.result.outcome));
          entry.wall_us = o.wall_us;
          entry.exec_index = exec_index;
          options_.status->record_run(std::move(entry));
          record_status_signature(options_.status, slot.result, o.call_context,
                                  fault_id, exec_index);
        }
        if (metrics != nullptr) {
          outcome_counters.at(slot.result.outcome)->inc();
          if (slot.result.activated) activation_counters.at(fault.fn)->inc();
          resp_hist->observe(slot.result.response_time.to_seconds());
          wall_hist->observe(wall_s);
        }
        const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/true);
        if (options_.on_progress) options_.on_progress(s);
      };
      std::vector<std::size_t> fallbacks =
          run_snapshot_phase(base, options_, campaign_seed, campaign_digest,
                             tail_site, items, record, set_labels);
      next_pending.insert(next_pending.end(), fallbacks.begin(), fallbacks.end());
      std::sort(next_pending.begin(), next_pending.end());
      pending = std::move(next_pending);
    }
  }

  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(effective_jobs(options_.jobs)),
                            std::max<std::size_t>(pending.size(), 1)));

  ShardQueue queue(pending.size(), workers);
  if (metrics != nullptr) {
    queue.set_metrics(
        &metrics->counter("dts_exec_steals_total", {},
                          "work-stealing events across exec workers"),
        &metrics->gauge("dts_exec_queue_depth", {},
                        "unclaimed faults remaining in the shard queue"));
  }
  std::mutex progress_mu;
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker_loop = [&](int worker) {
    try {
      obs::Counter* worker_runs = nullptr;
      if (metrics != nullptr) {
        worker_runs = &metrics->counter("dts_exec_worker_runs_total",
                                        {{"worker", std::to_string(worker)}},
                                        "fresh runs executed per exec worker");
        metrics->set_thread_name(worker, "worker-" + std::to_string(worker));
      }
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) return;
        if (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) {
          cancelled.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        const std::size_t item = queue.pop(worker);
        if (item == ShardQueue::npos) return;
        const std::size_t i = pending[item];
        const inject::FaultSpec& fault = list.faults[i];
        Slot& slot = slots[i];

        const bool elide = options_.skip_uncalled && proofs.proven_before(fault.fn, i);
        if (elide) {
          slot.state = SlotState::kElided;
        } else {
          // fault.id() concatenates several strings; build it once per run —
          // seed derivation, forensics, journal, and metrics all reuse it.
          const std::string fault_id = fault.id();
          core::RunConfig cfg = base;
          cfg.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(fault_id));
          if (options_.trace != obs::TraceMode::kOff &&
              cfg.trace_limit < options_.forensics_depth) {
            cfg.trace_limit = options_.forensics_depth;
          }
          const double run_start_us = metrics != nullptr ? metrics->now_us() : 0.0;
          const auto wall_start = std::chrono::steady_clock::now();
          core::FaultInjectionRun run(cfg);
          slot.result = run.execute(fault);
          const double wall_s = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - wall_start)
                                    .count();
          slot.fn_called = run.interceptor().target_function_called();
          slot.state = SlotState::kExecuted;
          if (!slot.result.activated && !slot.fn_called) proofs.record(fault.fn, i);

          const std::string exec_index =
              obs::fleet::ExecutionIndex{campaign_digest, 0, i}.to_string();
          const auto& inj_ctx = run.interceptor().injection_context();
          const std::string call_context = inj_ctx ? inj_ctx->to_string() : "";

          std::string forensics;
          if (forensics_wanted(options_.trace, slot.result)) {
            std::vector<std::string> context = forensics_context(slot.result);
            context.push_back("exec_index: " + exec_index);
            if (!call_context.empty()) {
              context.push_back("call_context: " + call_context);
            }
            forensics = obs::forensics_dump(fault_id, context, &run.spans(),
                                            run.interceptor().syscall_trace());
            if (!options_.forensics_dir.empty()) {
              std::ofstream fx(options_.forensics_dir + "/" +
                               forensics_file_name(i, fault_id));
              fx << forensics;
            }
          }

          if (journal.is_open()) {
            JournalRecord rec;
            rec.index = i;
            rec.fault_id = fault_id;
            rec.fn_called = slot.fn_called;
            rec.run_line = core::serialize_run_line(slot.result);
            rec.wall_us = static_cast<std::uint64_t>(std::llround(wall_s * 1e6));
            rec.sim_us =
                static_cast<std::uint64_t>(slot.result.sim_elapsed.count_micros());
            rec.exec_index = exec_index;
            rec.trace_digest = run.interceptor().trace_digest();
            rec.call_context = call_context;
            rec.forensics = std::move(forensics);
            rec.model = fault::model_annotation(fault);
            rec.tier = fault.tier;
            if (slot.result.rtrace && rtrace_wanted(base.rtrace, slot.result)) {
              rec.rtrace = slot.result.rtrace->serialize();
            }
            journal.append(rec);
          }

          if (options_.stall != nullptr) {
            options_.stall->observe(plan::StratumKey{fault.fn, fault.type}, wall_s,
                                    fault_id, exec_index);
          }
          if (options_.status != nullptr) {
            obs::fleet::RunEntry entry;
            entry.index = i;
            entry.fault_id = fault_id;
            entry.outcome = std::string(outcome_label(slot.result.outcome));
            entry.wall_us = static_cast<std::uint64_t>(std::llround(wall_s * 1e6));
            entry.exec_index = exec_index;
            options_.status->record_run(std::move(entry));
            record_status_signature(options_.status, slot.result, call_context,
                                    fault_id, exec_index);
          }

          if (metrics != nullptr) {
            outcome_counters.at(slot.result.outcome)->inc();
            if (slot.result.activated) {
              activation_counters.at(fault.fn)->inc();
            }
            resp_hist->observe(slot.result.response_time.to_seconds());
            wall_hist->observe(wall_s);
            worker_runs->inc();
            for (const obs::Span& span : run.spans().spans()) {
              obs::Labels span_labels = set_labels;
              span_labels.emplace_back("span", span.name);
              metrics->histogram("dts_middleware_span_seconds", span_labels,
                                 obs::response_time_buckets(),
                                 "middleware detection/recovery latency (sim seconds)")
                  .observe(span.duration().to_seconds());
            }
            obs::Labels event_args = {
                {"outcome", std::string(outcome_label(slot.result.outcome))},
                {"sim_s", sim::to_string(slot.result.sim_elapsed)},
                {"xi", exec_index}};
            if (slot.result.topo) {
              // Topology runs label their timeline slice with the targeted
              // tier and replica, so a Perfetto row reads "db fault on
              // sql_server-0 degraded" without a journal cross-reference.
              event_args.emplace_back("tier", slot.result.topo->tier);
              if (!run.interceptor().injection_machine().empty()) {
                event_args.emplace_back("replica",
                                        run.interceptor().injection_machine());
              }
              event_args.emplace_back("user_outcome",
                                      slot.result.topo->user_outcome);
            }
            metrics->add_complete_event(fault_id, "run", worker, run_start_us,
                                        wall_s * 1e6, event_args);
          }
        }

        std::lock_guard<std::mutex> lock(progress_mu);
        const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/!elide);
        if (options_.on_progress) options_.on_progress(s);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      stop.store(true, std::memory_order_relaxed);
    }
  };

  if (pending.empty()) {
    // Fully resumed: no worker will fire the callback, so report the final
    // state directly (done == total, everything reused).
    if (options_.on_progress) options_.on_progress(tracker.snapshot());
  } else if (workers == 1) {
    // jobs=1 stays on the calling thread and visits faults in list order —
    // the pre-subsystem serial campaign loop, exactly.
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
    for (auto& t : threads) t.join();
  }

  if (first_error) std::rethrow_exception(first_error);
  out.executed = tracker.snapshot().executed;
  if (cancelled.load()) {
    out.interrupted = true;
    return out;
  }

  // Merge: replay the paper-§4 skip rule serially over the completed results
  // so the output is byte-identical to a one-worker sweep regardless of how
  // the faults were scheduled above (shared with the distributed coordinator).
  std::vector<CompletedRun> completed(n);
  for (std::size_t i = 0; i < n; ++i) {
    completed[i].result = std::move(slots[i].result);
    completed[i].fn_called = slots[i].fn_called;
    completed[i].executed = slots[i].state == SlotState::kExecuted;
  }
  CampaignResult merged = merge_completed_runs(base, list, campaign_seed,
                                               options_.skip_uncalled,
                                               std::move(completed));
  out.runs = std::move(merged.runs);
  out.skipped = merged.skipped;
  out.executed += merged.executed;
  return out;
}

PlanCampaignResult CampaignExecutor::run_plan(const core::RunConfig& base,
                                              const plan::Plan& plan,
                                              std::uint64_t campaign_seed,
                                              const plan::SamplerOptions& sampler_options) {
  const std::size_t n = plan.entries.size();
  PlanCampaignResult out;
  std::vector<std::optional<core::RunResult>> results(n);

  // The journal key's fault count is the plan's entry count (the raw sweep),
  // which never equals a profile-restricted exhaustive journal's count — a
  // planned campaign can only resume another planned campaign.
  JournalKey key;
  key.workload = base.workload.name;
  key.middleware = static_cast<int>(base.middleware);
  key.watchd_version = static_cast<int>(base.watchd_version);
  key.seed = campaign_seed;
  key.fault_count = n;

  // Plan digest (folds in dispositions): the plan-campaign analogue of the
  // sweep digest stamped into exec indices by run().
  const std::uint64_t campaign_digest = plan::sweep_digest(plan);

  if (!options_.journal_path.empty() && options_.resume) {
    std::string error;
    auto records = read_journal(options_.journal_path, key, &error);
    if (!records) throw std::runtime_error(error);
    std::size_t foreign = 0;
    for (const auto& rec : *records) {
      if (rec.index >= n) continue;
      const plan::PlanEntry& e = plan.entries[rec.index];
      if (e.disposition != plan::Disposition::kExecute) continue;
      if (e.fault.id() != rec.fault_id) continue;
      if (foreign_record(rec, campaign_digest)) {
        ++foreign;
        continue;
      }
      if (results[rec.index]) continue;  // duplicate record
      core::RunResult r;
      if (!core::parse_run_line(base.workload.target_image, rec.run_line, &r, nullptr)) {
        continue;
      }
      results[rec.index] = std::move(r);
      ++out.reused;
    }
    warn_foreign_records(options_.journal_path, foreign, options_.metrics);
  }

  RunJournal journal;
  if (!options_.journal_path.empty()) {
    std::string error;
    if (!journal.open(options_.journal_path, key, options_.resume, &error,
                      options_.config_text, journal_version(base))) {
      throw std::runtime_error(error);
    }
  }

  obs::MetricsRegistry* metrics = options_.metrics;
  const obs::Labels set_labels = {{"workload", base.workload.name},
                                  {"middleware", middleware_label(base)}};
  obs::Histogram* resp_hist = nullptr;
  std::map<core::Outcome, obs::Counter*> outcome_counters;
  if (metrics != nullptr) {
    resp_hist = &metrics->histogram("dts_response_time_seconds", set_labels,
                                    obs::response_time_buckets(),
                                    "client response time per run (seconds)");
    for (core::Outcome o : core::kAllOutcomes) {
      obs::Labels run_labels = set_labels;
      run_labels.emplace_back("outcome", std::string(outcome_label(o)));
      outcome_counters[o] =
          &metrics->counter("dts_runs_total", run_labels, "executed runs by outcome");
    }
  }
  if (options_.trace != obs::TraceMode::kOff && !options_.forensics_dir.empty()) {
    std::filesystem::create_directories(options_.forensics_dir);
  }

  const int workers = effective_jobs(options_.jobs);

  plan::AdaptiveSampler sampler(plan, sampler_options);
  ProgressTracker tracker(plan.executable_count(), 0);
  std::mutex progress_mu;
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  // Round loop: issue one sampler batch, execute its fresh members in
  // parallel, then record the whole round back into the sampler (in entry
  // order) before asking for the next one. The barrier is what keeps the
  // executed-run set independent of the worker count: batch composition only
  // ever depends on fully-recorded earlier rounds.
  for (;;) {
    if (options_.cancel != nullptr && options_.cancel->load(std::memory_order_relaxed)) {
      cancelled.store(true, std::memory_order_relaxed);
      break;
    }
    const std::vector<std::size_t> batch = sampler.next_batch();
    if (batch.empty()) break;

    std::vector<std::size_t> fresh;
    for (std::size_t idx : batch) {
      if (results[idx]) {
        std::lock_guard<std::mutex> lock(progress_mu);
        const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/false);
        if (options_.on_progress) options_.on_progress(s);
      } else {
        fresh.push_back(idx);
      }
    }

    // Snapshot/fork phase, per round: plan entries carry their golden call
    // site directly (golden_known), so forked items need no profile lookup;
    // the profile still provides the tail checkpoint. Leftovers stay in
    // `fresh` for the round's worker pool.
    if (snapshot_phase_applicable(options_, base, fresh.size())) {
      const std::uint64_t tail_site = profile_tail_site(*options_.snapshot_profile);
      std::vector<snap::ForkItem> items;
      std::vector<std::size_t> next_fresh;
      for (std::size_t idx : fresh) {
        const plan::PlanEntry& entry = plan.entries[idx];
        if (!entry.golden_known) {
          next_fresh.push_back(idx);
          continue;
        }
        snap::ForkItem item;
        item.index = idx;
        item.fault = entry.fault;
        item.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(entry.fault.id()));
        item.mode = snap::ForkItem::Mode::kAtSite;
        item.site = entry.call_site;
        items.push_back(item);
      }
      if (!items.empty()) {
        auto record = [&](const snap::ChildOutcome& o) {
          const std::size_t idx = o.index;
          const plan::PlanEntry& entry = plan.entries[idx];
          const std::string fault_id = entry.fault.id();
          const double wall_s = static_cast<double>(o.wall_us) * 1e-6;
          const std::string exec_index =
              obs::fleet::ExecutionIndex{campaign_digest, 0, idx}.to_string();
          if (journal.is_open()) {
            JournalRecord rec;
            rec.index = idx;
            rec.fault_id = fault_id;
            rec.fn_called = o.fn_called;
            rec.run_line = core::serialize_run_line(o.result);
            rec.wall_us = o.wall_us;
            rec.sim_us =
                static_cast<std::uint64_t>(o.result.sim_elapsed.count_micros());
            rec.exec_index = exec_index;
            rec.stratum =
                plan::to_string(plan::StratumKey{entry.fault.fn, entry.fault.type});
            rec.trace_digest = o.trace_digest;
            rec.call_context = o.call_context;
            rec.model = fault::model_annotation(entry.fault);
            rec.tier = entry.fault.tier;
            if (o.result.rtrace && rtrace_wanted(base.rtrace, o.result)) {
              rec.rtrace = o.result.rtrace->serialize();
            }
            journal.append(rec);
          }
          if (options_.stall != nullptr) {
            options_.stall->observe(plan::StratumKey{entry.fault.fn, entry.fault.type},
                                    wall_s, fault_id, exec_index);
          }
          if (options_.status != nullptr) {
            obs::fleet::RunEntry run_entry;
            run_entry.index = idx;
            run_entry.fault_id = fault_id;
            run_entry.outcome = std::string(outcome_label(o.result.outcome));
            run_entry.wall_us = o.wall_us;
            run_entry.exec_index = exec_index;
            options_.status->record_run(std::move(run_entry));
            record_status_signature(options_.status, o.result, o.call_context,
                                    fault_id, exec_index);
          }
          if (metrics != nullptr) {
            outcome_counters.at(o.result.outcome)->inc();
            resp_hist->observe(o.result.response_time.to_seconds());
          }
          results[idx] = o.result;
          std::lock_guard<std::mutex> lock(progress_mu);
          const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/true);
          if (options_.on_progress) options_.on_progress(s);
        };
        std::vector<std::size_t> fallbacks =
            run_snapshot_phase(base, options_, campaign_seed, campaign_digest,
                               tail_site, items, record, set_labels);
        next_fresh.insert(next_fresh.end(), fallbacks.begin(), fallbacks.end());
        std::sort(next_fresh.begin(), next_fresh.end());
        fresh = std::move(next_fresh);
      }
    }

    std::atomic<std::size_t> cursor{0};
    auto worker_loop = [&] {
      try {
        for (;;) {
          if (stop.load(std::memory_order_relaxed)) return;
          if (options_.cancel != nullptr &&
              options_.cancel->load(std::memory_order_relaxed)) {
            cancelled.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_relaxed);
            return;
          }
          const std::size_t pos = cursor.fetch_add(1, std::memory_order_relaxed);
          if (pos >= fresh.size()) return;
          const std::size_t idx = fresh[pos];
          const plan::PlanEntry& entry = plan.entries[idx];
          const std::string fault_id = entry.fault.id();

          core::RunConfig cfg = base;
          cfg.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash(fault_id));
          if (options_.trace != obs::TraceMode::kOff &&
              cfg.trace_limit < options_.forensics_depth) {
            cfg.trace_limit = options_.forensics_depth;
          }
          const auto wall_start = std::chrono::steady_clock::now();
          core::FaultInjectionRun run(cfg);
          core::RunResult r = run.execute(entry.fault);
          const double wall_s = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - wall_start)
                                    .count();
          const bool fn_called = run.interceptor().target_function_called();

          const std::string exec_index =
              obs::fleet::ExecutionIndex{campaign_digest, 0, idx}.to_string();
          const auto& inj_ctx = run.interceptor().injection_context();
          const std::string call_context = inj_ctx ? inj_ctx->to_string() : "";

          std::string forensics;
          if (forensics_wanted(options_.trace, r)) {
            std::vector<std::string> context = forensics_context(r);
            context.push_back("exec_index: " + exec_index);
            if (!call_context.empty()) {
              context.push_back("call_context: " + call_context);
            }
            forensics = obs::forensics_dump(fault_id, context, &run.spans(),
                                            run.interceptor().syscall_trace());
            if (!options_.forensics_dir.empty()) {
              std::ofstream fx(options_.forensics_dir + "/" +
                               forensics_file_name(idx, fault_id));
              fx << forensics;
            }
          }

          if (journal.is_open()) {
            JournalRecord rec;
            rec.index = idx;
            rec.fault_id = fault_id;
            rec.fn_called = fn_called;
            rec.run_line = core::serialize_run_line(r);
            rec.wall_us = static_cast<std::uint64_t>(std::llround(wall_s * 1e6));
            rec.sim_us = static_cast<std::uint64_t>(r.sim_elapsed.count_micros());
            rec.exec_index = exec_index;
            rec.stratum = plan::to_string(plan::StratumKey{entry.fault.fn, entry.fault.type});
            rec.trace_digest = run.interceptor().trace_digest();
            rec.call_context = call_context;
            rec.forensics = std::move(forensics);
            rec.model = fault::model_annotation(entry.fault);
            rec.tier = entry.fault.tier;
            if (r.rtrace && rtrace_wanted(base.rtrace, r)) {
              rec.rtrace = r.rtrace->serialize();
            }
            journal.append(rec);
          }

          if (options_.stall != nullptr) {
            options_.stall->observe(
                plan::StratumKey{entry.fault.fn, entry.fault.type}, wall_s, fault_id,
                exec_index);
          }
          if (options_.status != nullptr) {
            obs::fleet::RunEntry run_entry;
            run_entry.index = idx;
            run_entry.fault_id = fault_id;
            run_entry.outcome = std::string(outcome_label(r.outcome));
            run_entry.wall_us = static_cast<std::uint64_t>(std::llround(wall_s * 1e6));
            run_entry.exec_index = exec_index;
            options_.status->record_run(std::move(run_entry));
            record_status_signature(options_.status, r, call_context, fault_id,
                                    exec_index);
          }

          if (metrics != nullptr) {
            outcome_counters.at(r.outcome)->inc();
            resp_hist->observe(r.response_time.to_seconds());
          }
          results[idx] = std::move(r);

          std::lock_guard<std::mutex> lock(progress_mu);
          const ProgressSnapshot s = tracker.completed(/*fresh_execution=*/true);
          if (options_.on_progress) options_.on_progress(s);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    };

    const int round_workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(workers), std::max<std::size_t>(fresh.size(), 1)));
    if (fresh.empty()) {
      // whole round reused from the journal
    } else if (round_workers == 1) {
      worker_loop();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(round_workers);
      for (int w = 0; w < round_workers; ++w) threads.emplace_back(worker_loop);
      for (auto& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
    if (cancelled.load()) break;

    for (std::size_t idx : batch) {
      const core::RunResult& r = *results[idx];
      sampler.record(idx, r.activated, r.outcome == core::Outcome::kFailure);
    }
  }

  out.executed = tracker.snapshot().executed;
  out.strata = sampler.progress();
  if (cancelled.load()) {
    out.interrupted = true;
    return out;
  }

  // Assemble plan-entry-order output: executed results as-is, duplicates
  // attributed to their representative's run, pruned entries synthesized as
  // non-activated records (what executing them would have classified as).
  out.runs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const plan::PlanEntry& e = plan.entries[i];
    switch (e.disposition) {
      case plan::Disposition::kExecute:
        if (results[i]) {
          out.runs.push_back(std::move(*results[i]));
        } else {
          ++out.unsampled;
        }
        break;
      case plan::Disposition::kDuplicate:
        if (results[e.duplicate_of]) {
          core::RunResult r = *results[e.duplicate_of];
          r.fault = e.fault;
          r.detail = "deduplicated: same corrupted word as " +
                     plan.entries[e.duplicate_of].fault.id();
          out.runs.push_back(std::move(r));
          ++out.deduped;
        } else {
          ++out.unsampled;
        }
        break;
      case plan::Disposition::kPruned: {
        core::RunResult r;
        r.fault = e.fault;
        r.activated = false;
        r.outcome = core::Outcome::kNormalSuccess;
        r.client_finished = true;
        r.detail = "pruned: " + std::string(plan::to_string(e.reason));
        out.runs.push_back(std::move(r));
        ++out.pruned;
        break;
      }
    }
  }

  if (metrics != nullptr) {
    for (const auto& [reason, count] : plan.prune_histogram()) {
      obs::Labels labels = set_labels;
      labels.emplace_back("reason", std::string(plan::to_string(reason)));
      metrics->counter("dts_plan_pruned_total", labels,
                       "faults pruned from the sweep, by proof")
          .inc(count);
    }
    metrics->counter("dts_plan_dedup_total", set_labels,
                     "faults attributed to an equivalent run instead of executing")
        .inc(out.deduped);
    metrics->counter("dts_plan_unsampled_total", set_labels,
                     "faults skipped by adaptive early stopping")
        .inc(out.unsampled);
    metrics->counter("dts_plan_runs_saved_total", set_labels,
                     "sweep entries that did not need a fresh simulation")
        .inc(n - out.executed - out.reused);
    for (const plan::StratumProgress& s : out.strata) {
      obs::Labels labels = set_labels;
      labels.emplace_back("stratum", plan::to_string(s.key));
      metrics->gauge("dts_plan_stratum_ci_half_width", labels,
                     "Wilson 95% CI half-width on the stratum failure rate")
          .set(s.ci_half_width);
      metrics->gauge("dts_plan_stratum_trials", labels,
                     "activated runs recorded in the stratum")
          .set(static_cast<double>(s.trials));
    }
  }
  return out;
}

}  // namespace dts::exec
