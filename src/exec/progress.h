// Live campaign progress: completed-run accounting plus derived throughput
// (runs/sec) and ETA, shared by the executor, the ntdts progress line and the
// bench harnesses.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <string>

namespace dts::exec {

/// One observation of campaign progress. `done` counts every finished fault
/// (freshly executed + skip-uncalled + reused from a resume journal); the
/// throughput figures are based on fresh executions only, since skipped and
/// reused faults cost (almost) nothing.
struct ProgressSnapshot {
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t executed = 0;  // fresh simulations run since campaign start
  std::size_t reused = 0;    // results loaded from a resume journal
  double elapsed_s = 0.0;
  double runs_per_sec = 0.0;
  double eta_s = 0.0;
};

/// Renders "done/total runs  12.3 runs/s  ETA 45s" (ETA omitted while the
/// rate is still unknown).
std::string format_progress(const ProgressSnapshot& s);

/// Accumulates completions against a monotonic clock. Not thread-safe;
/// the executor serializes calls under its progress mutex.
///
/// Throughput and ETA come from a sliding window over the most recent fresh
/// completions rather than the whole-campaign average: long campaigns mix
/// multi-minute timeout runs with millisecond crash runs, and the lifetime
/// average can mispredict the remaining time by an order of magnitude when
/// the mix shifts. Until the window has two samples the whole-campaign
/// average is used as a fallback.
class ProgressTracker {
 public:
  /// Recent fresh completions the rate window holds.
  static constexpr std::size_t kRateWindow = 64;

  /// Monotonic seconds source, injectable for tests. Null = steady_clock.
  using ClockFn = std::function<double()>;

  ProgressTracker(std::size_t total, std::size_t reused, ClockFn clock = nullptr);

  /// Records one finished fault and returns the updated snapshot.
  /// `fresh_execution` is false for skip-uncalled faults.
  ProgressSnapshot completed(bool fresh_execution);

  ProgressSnapshot snapshot() const;

 private:
  double now() const;  // seconds since construction

  ClockFn clock_;
  std::chrono::steady_clock::time_point start_;
  double clock_offset_ = 0.0;  // clock_() at construction
  std::deque<double> window_;  // completion times of recent fresh runs
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t executed_ = 0;
  std::size_t reused_ = 0;
};

}  // namespace dts::exec
