// Live campaign progress: completed-run accounting plus derived throughput
// (runs/sec) and ETA, shared by the executor, the ntdts progress line and the
// bench harnesses.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>

namespace dts::exec {

/// One observation of campaign progress. `done` counts every finished fault
/// (freshly executed + skip-uncalled + reused from a resume journal); the
/// throughput figures are based on fresh executions only, since skipped and
/// reused faults cost (almost) nothing.
struct ProgressSnapshot {
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t executed = 0;  // fresh simulations run since campaign start
  std::size_t reused = 0;    // results loaded from a resume journal
  double elapsed_s = 0.0;
  double runs_per_sec = 0.0;
  double eta_s = 0.0;
};

/// Renders "done/total runs  12.3 runs/s  ETA 45s" (ETA omitted while the
/// rate is still unknown).
std::string format_progress(const ProgressSnapshot& s);

/// Accumulates completions against a wall-clock start time. Not thread-safe;
/// the executor serializes calls under its progress mutex.
class ProgressTracker {
 public:
  ProgressTracker(std::size_t total, std::size_t reused);

  /// Records one finished fault and returns the updated snapshot.
  /// `fresh_execution` is false for skip-uncalled faults.
  ProgressSnapshot completed(bool fresh_execution);

  ProgressSnapshot snapshot() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t executed_ = 0;
  std::size_t reused_ = 0;
};

}  // namespace dts::exec
