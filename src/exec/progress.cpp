#include "exec/progress.h"

#include <cstdio>

namespace dts::exec {

std::string format_progress(const ProgressSnapshot& s) {
  char buf[128];
  if (s.runs_per_sec > 0.0) {
    std::snprintf(buf, sizeof buf, "%zu/%zu runs  %.1f runs/s  ETA %.0fs", s.done, s.total,
                  s.runs_per_sec, s.eta_s);
  } else {
    std::snprintf(buf, sizeof buf, "%zu/%zu runs", s.done, s.total);
  }
  return buf;
}

ProgressTracker::ProgressTracker(std::size_t total, std::size_t reused)
    : start_(std::chrono::steady_clock::now()),
      total_(total),
      done_(reused),
      reused_(reused) {}

ProgressSnapshot ProgressTracker::completed(bool fresh_execution) {
  ++done_;
  if (fresh_execution) ++executed_;
  return snapshot();
}

ProgressSnapshot ProgressTracker::snapshot() const {
  ProgressSnapshot s;
  s.done = done_;
  s.total = total_;
  s.executed = executed_;
  s.reused = reused_;
  s.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  if (s.elapsed_s > 0.0 && executed_ > 0) {
    s.runs_per_sec = static_cast<double>(executed_) / s.elapsed_s;
    s.eta_s = static_cast<double>(total_ - done_) / s.runs_per_sec;
  }
  return s;
}

}  // namespace dts::exec
