#include "exec/progress.h"

#include <cstdio>

namespace dts::exec {

std::string format_progress(const ProgressSnapshot& s) {
  char buf[128];
  if (s.runs_per_sec > 0.0) {
    std::snprintf(buf, sizeof buf, "%zu/%zu runs  %.1f runs/s  ETA %.0fs", s.done, s.total,
                  s.runs_per_sec, s.eta_s);
  } else {
    std::snprintf(buf, sizeof buf, "%zu/%zu runs", s.done, s.total);
  }
  return buf;
}

ProgressTracker::ProgressTracker(std::size_t total, std::size_t reused, ClockFn clock)
    : clock_(std::move(clock)),
      start_(std::chrono::steady_clock::now()),
      total_(total),
      done_(reused),
      reused_(reused) {
  if (clock_) clock_offset_ = clock_();
}

double ProgressTracker::now() const {
  if (clock_) return clock_() - clock_offset_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

ProgressSnapshot ProgressTracker::completed(bool fresh_execution) {
  ++done_;
  if (fresh_execution) {
    ++executed_;
    window_.push_back(now());
    if (window_.size() > kRateWindow) window_.pop_front();
  }
  return snapshot();
}

ProgressSnapshot ProgressTracker::snapshot() const {
  ProgressSnapshot s;
  s.done = done_;
  s.total = total_;
  s.executed = executed_;
  s.reused = reused_;
  s.elapsed_s = now();
  // Windowed rate over the last kRateWindow fresh completions; falls back to
  // the whole-campaign average until the window has an interval to measure.
  if (window_.size() >= 2 && window_.back() > window_.front()) {
    s.runs_per_sec =
        static_cast<double>(window_.size() - 1) / (window_.back() - window_.front());
  } else if (s.elapsed_s > 0.0 && executed_ > 0) {
    s.runs_per_sec = static_cast<double>(executed_) / s.elapsed_s;
  }
  if (s.runs_per_sec > 0.0) {
    s.eta_s = static_cast<double>(total_ - done_) / s.runs_per_sec;
  }
  return s;
}

}  // namespace dts::exec
