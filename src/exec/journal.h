// Resumable run journal: an append-only JSONL file with one record per
// completed fault-injection run, written as a campaign progresses. An
// interrupted campaign restarts from where it stopped by reloading the
// journal and executing only the missing faults — sound because every run is
// deterministic given the campaign seed and fault id (per-run seeds never
// depend on worker id or schedule).
//
// Format (one JSON object per line), schema version 5:
//   {"dts_journal":5,"workload":"Apache1","middleware":2,"watchd_version":3,
//    "seed":7,"faults":423,"config":"[test]\nworkload = Apache1\n..."}
//   {"i":17,"fault":"ReadFile.hFile#1:zero","called":1,
//    "run":"ReadFile.hFile#1:zero 1 failure 0 123456 0 0 1",
//    "wall_us":1832,"sim_us":414000000,"xi":"a3f1c0de9b24e871/4/17",
//    "td":"9b24e871a3f1c0de","cc":"ReadFile@417#1/89abcdef01234567",
//    "fx":"=== DTS forensics: ...\n..."}
//
// The "run" payload reuses the campaign-file run serialization
// (core::serialize_run_line); "called" records whether the target image
// called the injected function at all, which the executor needs to replay
// the paper-§4 skip-uncalled rule on resume.
//
// v2 adds per-run timings — "wall_us" (host wall clock; nondeterministic,
// observability only) and "sim_us" (simulated time consumed) — plus an
// optional "fx" forensics dump (the syscall-trace tail) on runs the trace
// mode selects. Planned campaigns (src/plan/) additionally tag each record
// with its sampling stratum as "st":"fn/type". v3 adds the causal execution
// index "xi":"campaign_digest/lease_id/fault_index" (obs/fleet/span.h) so
// every record names which campaign, which shard lease, and which fault
// produced it — the same identifier stamped into forensics dumps and trace
// events. v4 adds forensic replay fields (src/forensics/): the header gains
// an optional "config" carrying the full serialized campaign configuration
// (core::serialize_config) so `ntdts replay` can rebuild the exact RunConfig
// from the journal alone, and each record gains "td" (the interceptor's
// rolling trace digest, 16-hex — the run's trajectory fingerprint) and "cc"
// (the dynamic call context of the corrupted call, present only when the
// fault fired). v5 adds the fault-model axis (src/fault/): each record gains
// an optional "fm" carrying the model annotation
// "<operator-family>:<temporal>" (e.g. "oserror:transient", "paper:every2"),
// ELIDED for the default axis (paper operator, transient) so default-model
// journals differ from v4 only in the header version. `ntdts replay` uses it
// to refuse silently-transient replays of records whose fault id names a
// temporal mode but whose record predates the field. v6 adds the multi-tier
// topology axis (src/topo/): each record gains an optional "tier" naming the
// tier the fault targeted, ELIDED when empty — and the v6 header version is
// written only for topology campaigns, so single-tier journals stay
// byte-identical to v5. v7 adds causal request tracing (src/obs/rtrace/):
// each record gains an optional "rt" carrying the run's serialized request
// trace (propagation-path digest + per-hop spans, RunTrace::serialize), and
// the v7 header version is written only for topology campaigns with a
// non-off rtrace mode — classic journals stay v5 and untraced topology
// journals stay v6, both byte-identical to before. The reader is field-based
// and accepts versions 1–7: older files resume cleanly (missing fields stay
// zero/empty), and newer records with fields an older reader never knew
// about parse the same way.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dts::exec {

/// Identity of the campaign a journal belongs to. Resuming is refused when
/// the on-disk header does not match: replaying another campaign's records
/// would silently corrupt results.
struct JournalKey {
  std::string workload;
  int middleware = 0;
  int watchd_version = 0;
  std::uint64_t seed = 0;
  std::size_t fault_count = 0;

  friend bool operator==(const JournalKey&, const JournalKey&) = default;
};

struct JournalRecord {
  std::size_t index = 0;   // position in the fault list
  std::string fault_id;    // sanity-checked against the list on resume
  bool fn_called = false;  // the target image called the injected function
  std::string run_line;    // core::serialize_run_line payload

  // v2 fields; zero/empty when reading a v1 journal.
  std::uint64_t wall_us = 0;  // host wall-clock time of the run
  std::uint64_t sim_us = 0;   // simulated time the run consumed
  std::string forensics;      // syscall-trace dump (empty = not captured)
  std::string stratum;        // plan sampling stratum, "fn/type" (empty =
                              // not a planned campaign)

  // v3 field; empty when reading a v1/v2 journal.
  std::string exec_index;  // "campaign_digest/lease_id/fault_index"

  // v4 fields; zero/empty when reading an older journal.
  std::uint64_t trace_digest = 0;  // interceptor trajectory fingerprint
  std::string call_context;        // corrupted call's dynamic context
                                   // (empty = fault never fired)

  // v5 field; empty when reading an older journal AND for default-axis
  // faults (paper operator, transient) — fault::model_annotation form.
  std::string model;

  // v6 field; empty when reading an older journal AND for classic
  // single-tier campaigns — the topology tier the fault targeted.
  std::string tier;

  // v7 field; empty when reading an older journal, for untraced campaigns,
  // and for runs the rtrace mode elides — the serialized request trace
  // (obs::rtrace::RunTrace::serialize / ::parse).
  std::string rtrace;
};

/// Reads the records of an existing journal. A missing file yields an empty
/// vector (fresh start); a present file whose header does not match `key`
/// yields nullopt with *error set. Malformed trailing lines (the campaign
/// was killed mid-write) are skipped.
std::optional<std::vector<JournalRecord>> read_journal(const std::string& path,
                                                       const JournalKey& key,
                                                       std::string* error);

/// A journal read without a key to check against: the header as found on
/// disk plus every well-formed record. Used by `ntdts report`, which merges
/// journals from whatever campaigns the operator hands it.
struct JournalFile {
  JournalKey key;
  std::uint64_t version = 0;
  std::string config_text;  // v4 header "config" (serialized campaign
                            // configuration; empty in older journals)
  std::vector<JournalRecord> records;
};

/// Reads `path` as a journal of any supported version. Unlike read_journal a
/// missing file is an error here (nullopt with *error set) — the caller
/// named the file explicitly.
std::optional<JournalFile> read_journal_file(const std::string& path,
                                             std::string* error);

/// Append-only JSONL writer. Thread-safe; every record is flushed so a
/// killed campaign loses at most the in-flight line.
class RunJournal {
 public:
  /// Opens `path`. With append=false the file is truncated and a fresh
  /// header written; with append=true new records accumulate after the
  /// existing content (resume). `config_text`, when non-empty, is embedded
  /// in the v4 header so `ntdts replay` can rebuild the exact run
  /// configuration; it is informational and not part of the resume identity
  /// check (JournalKey). `version` is the schema version stamped into the
  /// header: 5 (the default, classic campaigns), 6 (topology campaigns) or
  /// 7 (topology campaigns with request tracing). Returns false with *error
  /// on I/O failure.
  bool open(const std::string& path, const JournalKey& key, bool append,
            std::string* error, const std::string& config_text = "",
            std::uint64_t version = 5);

  bool is_open() const { return out_.is_open(); }

  void append(const JournalRecord& rec);

 private:
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace dts::exec
