#include "stats/stats.h"

#include <algorithm>
#include <cmath>

namespace dts::stats {

double t_critical_95(std::size_t df) {
  // Two-sided 95 % critical values; df indexes [1..30], then selected larger
  // values, then the normal asymptote.
  static constexpr double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042,
  };
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  Interval out;
  if (trials == 0) return out;  // vacuous [0, 1]
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  out.low = std::max(0.0, centre - margin);
  out.high = std::min(1.0, centre + margin);
  return out;
}

Summary summarize(const std::vector<double>& samples) {
  Accumulator acc;
  for (double x : samples) acc.add(x);
  return acc.summary();
}

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

Summary Accumulator::summary() const {
  Summary s;
  s.n = n_;
  s.mean = mean();
  s.stddev = std::sqrt(variance());
  if (n_ >= 2) {
    s.ci95_half = t_critical_95(n_ - 1) * s.stddev / std::sqrt(static_cast<double>(n_));
  }
  return s;
}

}  // namespace dts::stats
