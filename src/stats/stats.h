// Small statistics toolkit: mean, sample standard deviation, and 95 %
// confidence intervals via the t-distribution (the paper reports response
// times "with corresponding 95% confidence intervals").
#pragma once

#include <cstddef>
#include <vector>

namespace dts::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;    // sample standard deviation (n-1)
  double ci95_half = 0.0; // 95 % confidence half-width; 0 when n < 2
};

/// Two-sided 95 % critical value of Student's t for `df` degrees of freedom
/// (table lookup, 1.960 asymptote).
double t_critical_95(std::size_t df);

/// Wilson score confidence interval for a binomial proportion. Unlike the
/// normal approximation it stays inside [0, 1] and behaves sanely at 0/all
/// successes and tiny n — exactly the regime an adaptive fault-sampling
/// stratum starts in. `z` is the two-sided critical value (1.959964 for
/// 95 %). trials == 0 yields the vacuous [0, 1].
struct Interval {
  double low = 0.0;
  double high = 1.0;
  double half_width() const { return (high - low) / 2.0; }
};

Interval wilson_interval(std::size_t successes, std::size_t trials, double z);

/// The z for the planner's 95 % stopping rule.
inline constexpr double kZ95 = 1.959964;

Summary summarize(const std::vector<double>& samples);

/// Welford-style incremental accumulator.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance
  Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dts::stats
