// Small statistics toolkit: mean, sample standard deviation, and 95 %
// confidence intervals via the t-distribution (the paper reports response
// times "with corresponding 95% confidence intervals").
#pragma once

#include <cstddef>
#include <vector>

namespace dts::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;    // sample standard deviation (n-1)
  double ci95_half = 0.0; // 95 % confidence half-width; 0 when n < 2
};

/// Two-sided 95 % critical value of Student's t for `df` degrees of freedom
/// (table lookup, 1.960 asymptote).
double t_critical_95(std::size_t df);

Summary summarize(const std::vector<double>& samples);

/// Welford-style incremental accumulator.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance
  Summary summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dts::stats
