// Equivalence pruner: turns a raw fault sweep plus a golden profile into a
// Plan. Three conservative transformations, all outcome-neutral for the
// paper tables (whose denominators count activated faults only):
//
//   1. Prune faults of functions the golden run never called — the
//      profile-restricted sweep would not execute them either, and the
//      skip-uncalled rule proves them non-activated.
//   2. Prune faults whose invocation the golden run never reached — the
//      injector never fires, the run is the golden run, activated == false.
//   3. Prune inert corruptions: corrupt(golden value) == golden value (zeroing
//      an already-zero word, setting all bits of 0xFFFFFFFF, ...). The write
//      is a no-op; the interceptor itself classifies such runs as
//      non-activated (Interceptor::effective()).
//
// Plus one deduplication: two faults at the same injection point whose
// corrupted words are equal (e.g. flip and ones on a golden-zero argument)
// are the same run — execute one, attribute the outcome to both.
#pragma once

#include "inject/fault_list.h"
#include "plan/plan.h"
#include "plan/profiler.h"

namespace dts::plan {

/// Builds the plan for `base` over `sweep` (every fault of the sweep appears
/// in the plan, pruned ones with their reason — nothing silently dropped).
/// `profile` must come from golden_profile() on the same configuration.
Plan build_plan(const core::RunConfig& base, const inject::FaultList& sweep,
                const GoldenProfile& profile, std::uint64_t campaign_seed,
                int iterations);

/// Validates a loaded plan against the campaign about to run. Returns an
/// empty string on success, else a human-readable mismatch description.
std::string validate_plan(const Plan& plan, const core::RunConfig& base,
                          std::uint64_t campaign_seed, int iterations);

}  // namespace dts::plan
