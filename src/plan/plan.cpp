#include "plan/plan.h"

#include <charconv>
#include <sstream>

#include "ntsim/kernel32_registry.h"
#include "obs/jsonl.h"

namespace dts::plan {

namespace {

// Plan files parse with inject::parse_fault_id_any — unlike the run-facing
// parser it accepts catalogue-only (unimplemented) functions: the raw sweep —
// and therefore every plan file — contains them as function_uncalled prunes,
// while run-facing fault lists rightly reject them as non-injectable.
std::optional<inject::FaultSpec> parse_plan_fault_id(std::string_view target_image,
                                                     std::string_view id) {
  return inject::parse_fault_id_any(target_image, id);
}

}  // namespace

std::string_view to_string(PruneReason r) {
  switch (r) {
    case PruneReason::kFunctionUncalled: return "function_uncalled";
    case PruneReason::kInvocationNotReached: return "invocation_not_reached";
    case PruneReason::kInertCorruption: return "inert_corruption";
  }
  return "?";
}

std::optional<PruneReason> prune_reason_from_string(std::string_view s) {
  for (PruneReason r : kAllPruneReasons) {
    if (s == to_string(r)) return r;
  }
  return std::nullopt;
}

std::string to_string(const StratumKey& key) {
  std::string out{nt::to_string(key.fn)};
  out += '/';
  out += inject::to_string(key.type);
  return out;
}

std::size_t Plan::executable_count() const {
  std::size_t n = 0;
  for (const auto& e : entries) n += e.disposition == Disposition::kExecute ? 1 : 0;
  return n;
}

std::size_t Plan::duplicate_count() const {
  std::size_t n = 0;
  for (const auto& e : entries) n += e.disposition == Disposition::kDuplicate ? 1 : 0;
  return n;
}

std::size_t Plan::pruned_count() const {
  std::size_t n = 0;
  for (const auto& e : entries) n += e.disposition == Disposition::kPruned ? 1 : 0;
  return n;
}

std::map<PruneReason, std::size_t> Plan::prune_histogram() const {
  std::map<PruneReason, std::size_t> hist;
  for (const auto& e : entries) {
    if (e.disposition == Disposition::kPruned) ++hist[e.reason];
  }
  return hist;
}

std::size_t Plan::reachable_count() const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.disposition == Disposition::kPruned && e.reason == PruneReason::kFunctionUncalled) {
      continue;
    }
    ++n;
  }
  return n;
}

double Plan::predicted_savings() const {
  const std::size_t reachable = reachable_count();
  if (reachable == 0) return 0.0;
  return static_cast<double>(reachable - executable_count()) /
         static_cast<double>(reachable);
}

std::vector<Stratum> Plan::strata() const {
  std::map<StratumKey, std::vector<std::size_t>> grouped;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PlanEntry& e = entries[i];
    if (e.disposition != Disposition::kExecute) continue;
    grouped[StratumKey{e.fault.fn, e.fault.type}].push_back(i);
  }
  std::vector<Stratum> out;
  out.reserve(grouped.size());
  for (auto& [key, members] : grouped) out.push_back({key, std::move(members)});
  return out;
}

std::string Plan::serialize() const {
  std::ostringstream out;
  out << "{\"dts_plan\":1,\"workload\":\"" << obs::json_escape(workload)
      << "\",\"image\":\"" << obs::json_escape(target_image)
      << "\",\"middleware\":" << middleware << ",\"watchd_version\":" << watchd_version
      << ",\"seed\":" << seed << ",\"iterations\":" << iterations
      << ",\"entries\":" << entries.size() << "}\n";
  for (const auto& e : entries) {
    out << "{\"fault\":\"" << obs::json_escape(e.fault.id()) << "\"";
    switch (e.disposition) {
      case Disposition::kExecute:
        out << ",\"d\":\"x\"";
        break;
      case Disposition::kDuplicate:
        out << ",\"d\":\"dup\",\"of\":" << e.duplicate_of;
        break;
      case Disposition::kPruned:
        out << ",\"d\":\"prune\",\"why\":\"" << to_string(e.reason) << "\"";
        break;
    }
    if (e.golden_known) {
      out << ",\"site\":" << e.call_site << ",\"golden\":" << e.golden_value;
    }
    out << "}\n";
  }
  return out.str();
}

std::optional<Plan> Plan::parse(const std::string& text, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return fail("empty plan file");

  std::uint64_t version = 0;
  if (!obs::json_uint_field(line, "dts_plan", &version) || version != 1) {
    return fail("not a DTS plan-cache file");
  }
  Plan plan;
  std::uint64_t mw = 0, wv = 0, iters = 0, count = 0;
  if (!obs::json_string_field(line, "workload", &plan.workload) ||
      !obs::json_string_field(line, "image", &plan.target_image) ||
      !obs::json_uint_field(line, "middleware", &mw) ||
      !obs::json_uint_field(line, "watchd_version", &wv) ||
      !obs::json_uint_field(line, "seed", &plan.seed) ||
      !obs::json_uint_field(line, "iterations", &iters) ||
      !obs::json_uint_field(line, "entries", &count)) {
    return fail("malformed plan header");
  }
  plan.middleware = static_cast<int>(mw);
  plan.watchd_version = static_cast<int>(wv);
  plan.iterations = static_cast<int>(iters);
  plan.entries.reserve(count);

  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fail_line = [&](const std::string& msg) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + msg;
      }
      return std::nullopt;
    };
    PlanEntry e;
    std::string fault_id, d;
    if (!obs::json_string_field(line, "fault", &fault_id) ||
        !obs::json_string_field(line, "d", &d)) {
      return fail_line("malformed plan entry");
    }
    auto spec = parse_plan_fault_id(plan.target_image, fault_id);
    if (!spec) return fail_line("bad fault id '" + fault_id + "'");
    e.fault = *spec;
    if (d == "x") {
      e.disposition = Disposition::kExecute;
    } else if (d == "dup") {
      e.disposition = Disposition::kDuplicate;
      std::uint64_t of = 0;
      if (!obs::json_uint_field(line, "of", &of) || of >= plan.entries.size() ||
          plan.entries[of].disposition != Disposition::kExecute) {
        return fail_line("duplicate entry without a valid earlier representative");
      }
      e.duplicate_of = static_cast<std::size_t>(of);
    } else if (d == "prune") {
      e.disposition = Disposition::kPruned;
      std::string why;
      if (!obs::json_string_field(line, "why", &why)) {
        return fail_line("pruned entry without a reason");
      }
      auto reason = prune_reason_from_string(why);
      if (!reason) return fail_line("unknown prune reason '" + why + "'");
      e.reason = *reason;
    } else {
      return fail_line("unknown disposition '" + d + "'");
    }
    std::uint64_t golden = 0;
    if (obs::json_uint_field(line, "site", &e.call_site)) {
      if (!obs::json_uint_field(line, "golden", &golden)) {
        return fail_line("call site without a golden value");
      }
      e.golden_known = true;
      e.golden_value = static_cast<nt::Word>(golden);
    }
    plan.entries.push_back(std::move(e));
  }
  if (plan.entries.size() != count) {
    return fail("truncated plan: header promises " + std::to_string(count) +
                " entries, file has " + std::to_string(plan.entries.size()));
  }
  return plan;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t* h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  // Separator between fields, so concatenation cannot alias across ids.
  *h ^= 0xff;
  *h *= kFnvPrime;
}

}  // namespace

std::uint64_t sweep_digest(const inject::FaultList& list) {
  std::uint64_t h = kFnvOffset;
  for (const inject::FaultSpec& f : list.faults) fnv_mix(&h, f.id());
  return h;
}

std::uint64_t sweep_digest(const Plan& plan) {
  std::uint64_t h = kFnvOffset;
  for (const PlanEntry& e : plan.entries) {
    fnv_mix(&h, e.fault.id());
    const char d = static_cast<char>('0' + static_cast<int>(e.disposition));
    fnv_mix(&h, std::string_view(&d, 1));
  }
  return h;
}

}  // namespace dts::plan
