// Golden-run profiler: one fault-free pass of the workload recording, per
// (function, invocation), the observed argument words and a stable call-site
// index (the machine-wide syscall sequence number — stable because the
// golden run is deterministic for a fixed seed). The profile is what the
// pruner consults to prove faults inert before any of them execute.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/run.h"

namespace dts::plan {

/// One golden invocation of a KERNEL32 function by the target image.
struct GoldenCall {
  std::uint64_t call_site = 0;  // machine-wide syscall sequence number
  int argc = 0;
  std::array<nt::Word, nt::kMaxSyscallArgs> args{};
};

struct GoldenProfile {
  std::string target_image;
  std::uint64_t profile_seed = 0;

  /// First-N invocations per function, in call order: calls[fn][i] is
  /// invocation i+1.
  std::map<nt::Fn, std::vector<GoldenCall>> calls;

  /// Total invocation count per function (may exceed calls[fn].size() when
  /// the capture window is smaller than the call count).
  std::map<nt::Fn, int> invocation_counts;

  /// Functions the golden run called at all — the same set the campaign's
  /// profiling pass produces (both derive their seed the same way), so a
  /// plan built from this profile restricts the sweep identically.
  std::set<nt::Fn> activated;
};

/// Executes the fault-free golden run and returns its profile. The run seed
/// is derived exactly as core::profile_workload derives it
/// (mix(campaign_seed, hash("profile"))), so `activated` matches the
/// campaign's Table-1 function set. `max_invocations` bounds the per-function
/// capture window; it must be at least the campaign's iteration count.
GoldenProfile golden_profile(const core::RunConfig& base, std::uint64_t campaign_seed,
                             int max_invocations);

}  // namespace dts::plan
