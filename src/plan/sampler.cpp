#include "plan/sampler.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"
#include "stats/stats.h"

namespace dts::plan {

AdaptiveSampler::AdaptiveSampler(const Plan& plan, const SamplerOptions& options)
    : options_(options), entry_stratum_(plan.entries.size(), -1) {
  for (const Stratum& stratum : plan.strata()) {
    StratumState state;
    state.progress.key = stratum.key;
    state.progress.planned = stratum.members.size();
    state.order = stratum.members;
    if (sampling_enabled()) {
      // Seeded within-stratum shuffle so a partial sample is not biased
      // toward the catalogue's parameter order. Deterministic: depends on
      // the campaign seed and the stratum key only.
      sim::Rng rng(sim::Rng::mix(options_.seed,
                                 sim::Rng::hash(to_string(stratum.key))));
      for (std::size_t i = state.order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(i) - 1));
        std::swap(state.order[i - 1], state.order[j]);
      }
    }
    for (std::size_t member : stratum.members) {
      entry_stratum_[member] = static_cast<int>(strata_.size());
    }
    strata_.push_back(std::move(state));
  }
}

bool AdaptiveSampler::stratum_satisfied(const StratumState& s) const {
  if (!sampling_enabled()) return false;
  if (s.progress.trials < options_.min_stratum_trials) return false;
  return stats::wilson_interval(s.progress.failures, s.progress.trials, stats::kZ95)
             .half_width() <= options_.ci_half_width;
}

std::vector<std::size_t> AdaptiveSampler::next_batch() {
  if (outstanding_ != 0) {
    throw std::logic_error(
        "AdaptiveSampler::next_batch called with unrecorded runs outstanding");
  }
  std::vector<std::size_t> batch;
  for (StratumState& s : strata_) {
    if (s.progress.stopped_early || s.cursor >= s.order.size()) continue;
    if (stratum_satisfied(s)) {
      s.progress.stopped_early = true;  // cursor stays put: the tail is unsampled
      continue;
    }
    // Sampling off: the whole stratum goes out in one round — there is no
    // stop rule to consult between batches.
    const std::size_t take = sampling_enabled()
                                 ? std::min(options_.batch, s.order.size() - s.cursor)
                                 : s.order.size() - s.cursor;
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(s.order[s.cursor + i]);
    }
    s.cursor += take;
    s.progress.issued += take;
  }
  std::sort(batch.begin(), batch.end());
  outstanding_ = batch.size();
  return batch;
}

void AdaptiveSampler::record(std::size_t entry_index, bool activated, bool failure) {
  if (entry_index >= entry_stratum_.size() || entry_stratum_[entry_index] < 0) {
    throw std::logic_error("AdaptiveSampler::record: not an executable entry");
  }
  StratumState& s = strata_[static_cast<std::size_t>(entry_stratum_[entry_index])];
  if (activated) {
    ++s.progress.trials;
    if (failure) ++s.progress.failures;
    s.progress.ci_half_width =
        stats::wilson_interval(s.progress.failures, s.progress.trials, stats::kZ95)
            .half_width();
  }
  if (outstanding_ == 0) {
    throw std::logic_error("AdaptiveSampler::record: no runs outstanding");
  }
  --outstanding_;
}

std::vector<std::size_t> AdaptiveSampler::unsampled() const {
  std::vector<std::size_t> out;
  for (const StratumState& s : strata_) {
    for (std::size_t i = s.cursor; i < s.order.size(); ++i) out.push_back(s.order[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StratumProgress> AdaptiveSampler::progress() const {
  std::vector<StratumProgress> out;
  out.reserve(strata_.size());
  for (const StratumState& s : strata_) out.push_back(s.progress);
  return out;
}

}  // namespace dts::plan
