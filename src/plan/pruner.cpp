#include "plan/pruner.h"

#include <map>
#include <tuple>

namespace dts::plan {

Plan build_plan(const core::RunConfig& base, const inject::FaultList& sweep,
                const GoldenProfile& profile, std::uint64_t campaign_seed,
                int iterations) {
  Plan plan;
  plan.workload = base.workload.name;
  plan.target_image = base.workload.target_image;
  plan.middleware = static_cast<int>(base.middleware);
  plan.watchd_version = static_cast<int>(base.watchd_version);
  plan.seed = campaign_seed;
  plan.iterations = iterations;
  plan.entries.reserve(sweep.faults.size());

  // Injection point + corrupted word -> index of the kExecute representative.
  std::map<std::tuple<nt::Fn, int, int, nt::Word>, std::size_t> representatives;

  for (const inject::FaultSpec& fault : sweep.faults) {
    PlanEntry e;
    e.fault = fault;

    auto count_it = profile.invocation_counts.find(fault.fn);
    const int golden_invocations =
        count_it == profile.invocation_counts.end() ? 0 : count_it->second;

    if (!profile.activated.contains(fault.fn)) {
      e.disposition = Disposition::kPruned;
      e.reason = PruneReason::kFunctionUncalled;
      plan.entries.push_back(std::move(e));
      continue;
    }
    if (fault.invocation > golden_invocations) {
      e.disposition = Disposition::kPruned;
      e.reason = PruneReason::kInvocationNotReached;
      plan.entries.push_back(std::move(e));
      continue;
    }

    // The invocation is reached; look up its golden argument word when the
    // capture window covers it (it does whenever max_invocations >= the
    // sweep's iteration axis). Result-side operators (param_index -1) have
    // no golden argument word — the profiler captures call arguments, not
    // results — so they carry no golden value.
    auto calls_it = profile.calls.find(fault.fn);
    if (calls_it != profile.calls.end() &&
        fault.invocation <= static_cast<int>(calls_it->second.size())) {
      const GoldenCall& call = calls_it->second[fault.invocation - 1];
      if (fault.param_index >= 0 && fault.param_index < call.argc) {
        e.golden_known = true;
        e.call_site = call.call_site;
        e.golden_value = call.args[fault.param_index];
      }
    }

    // Value-level pruning is sound only when the golden word at ONE
    // invocation decides the whole fault: a single-shot parameter corruption.
    // `inert_corruption` does not apply to error-return/completion faults
    // (they perturb the call regardless of its arguments), and an
    // intermittent/persistent fault's later firings see post-divergence
    // words the golden profile cannot predict. Such faults execute.
    if (e.golden_known && inject::single_shot_param_corruption(fault)) {
      const nt::Word corrupted = inject::corrupt(e.golden_value, fault.type);
      if (corrupted == e.golden_value) {
        e.disposition = Disposition::kPruned;
        e.reason = PruneReason::kInertCorruption;
        plan.entries.push_back(std::move(e));
        continue;
      }
      const auto key = std::make_tuple(fault.fn, fault.param_index, fault.invocation,
                                       corrupted);
      auto [it, inserted] = representatives.try_emplace(key, plan.entries.size());
      if (!inserted) {
        e.disposition = Disposition::kDuplicate;
        e.duplicate_of = it->second;
        plan.entries.push_back(std::move(e));
        continue;
      }
    }

    e.disposition = Disposition::kExecute;
    plan.entries.push_back(std::move(e));
  }
  return plan;
}

std::string validate_plan(const Plan& plan, const core::RunConfig& base,
                          std::uint64_t campaign_seed, int iterations) {
  auto mismatch = [](const std::string& what, const std::string& plan_has,
                     const std::string& campaign_has) {
    return "plan " + what + " mismatch: plan has " + plan_has + ", campaign has " +
           campaign_has;
  };
  if (plan.workload != base.workload.name) {
    return mismatch("workload", plan.workload, base.workload.name);
  }
  if (plan.target_image != base.workload.target_image) {
    return mismatch("target image", plan.target_image, base.workload.target_image);
  }
  if (plan.middleware != static_cast<int>(base.middleware)) {
    return mismatch("middleware", std::to_string(plan.middleware),
                    std::to_string(static_cast<int>(base.middleware)));
  }
  if (plan.watchd_version != static_cast<int>(base.watchd_version)) {
    return mismatch("watchd version", std::to_string(plan.watchd_version),
                    std::to_string(static_cast<int>(base.watchd_version)));
  }
  if (plan.seed != campaign_seed) {
    return mismatch("seed", std::to_string(plan.seed), std::to_string(campaign_seed));
  }
  if (plan.iterations != iterations) {
    return mismatch("iterations", std::to_string(plan.iterations),
                    std::to_string(iterations));
  }
  return {};
}

}  // namespace dts::plan
