#include "plan/checkpoints.h"

#include <algorithm>

#include "sim/rng.h"

namespace dts::plan {

std::vector<std::uint64_t> place_checkpoints(std::vector<std::uint64_t> sites,
                                             std::size_t max_checkpoints) {
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  if (max_checkpoints == 0 || sites.size() <= max_checkpoints) return sites;
  if (max_checkpoints == 1) return {sites.front()};
  std::vector<std::uint64_t> out;
  out.reserve(max_checkpoints);
  // Even spacing by *index* (not seq value): every checkpoint lands on an
  // actual injection site, and k == 0 keeps the earliest one.
  for (std::size_t k = 0; k < max_checkpoints; ++k) {
    out.push_back(sites[k * (sites.size() - 1) / (max_checkpoints - 1)]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::uint64_t> injection_site(const GoldenProfile& profile,
                                            const inject::FaultSpec& fault) {
  if (fault.target_image != profile.target_image) return std::nullopt;
  auto it = profile.calls.find(fault.fn);
  if (it == profile.calls.end()) return std::nullopt;
  if (fault.invocation < 1 ||
      static_cast<std::size_t>(fault.invocation) > it->second.size()) {
    return std::nullopt;
  }
  return it->second[static_cast<std::size_t>(fault.invocation) - 1].call_site;
}

std::uint64_t snapshot_identity(std::uint64_t campaign_digest, std::uint64_t site,
                                std::uint64_t world_digest) {
  return sim::Rng::mix(campaign_digest, sim::Rng::mix(site, world_digest));
}

}  // namespace dts::plan
