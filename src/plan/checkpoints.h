// Checkpoint placement for snapshot execution (src/snap/).
//
// The golden-run profile names every injection point by its machine-wide
// syscall sequence number. Snapshot execution captures world state at a
// bounded subset of those sites; each fault run then forks from the greatest
// checkpoint at or before its own injection site and replays only the
// suffix. Placement is pure arithmetic over the profile — deterministic, so
// every process planning the same campaign places identical checkpoints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "inject/fault.h"
#include "plan/profiler.h"

namespace dts::plan {

/// Thins `sites` (golden-run call sites, any order, duplicates allowed) to at
/// most `max_checkpoints` snapshot points: sorted, unique, evenly spaced over
/// the site list by index, always retaining the earliest site (a fault whose
/// injection site precedes every checkpoint could otherwise never fork —
/// checkpoints after the injection point are useless to it).
/// `max_checkpoints == 0` means unbounded.
std::vector<std::uint64_t> place_checkpoints(std::vector<std::uint64_t> sites,
                                             std::size_t max_checkpoints);

/// The golden-run call site of `fault`'s injection point: the seq of
/// invocation `fault.invocation` of `fault.fn` by the profiled image.
/// nullopt if the golden run never reached that invocation (or profiled a
/// different image) — such faults cannot fork and take a full run.
std::optional<std::uint64_t> injection_site(const GoldenProfile& profile,
                                            const inject::FaultSpec& fault);

/// Identity of one snapshot: campaign digest × call site × captured world
/// digest. Validated when a fault run is attached to a snapshot, so a
/// snapshot taken for a different campaign (or a world that diverged from
/// the golden run) can never silently serve a fork.
std::uint64_t snapshot_identity(std::uint64_t campaign_digest, std::uint64_t site,
                                std::uint64_t world_digest);

}  // namespace dts::plan
