// Campaign plan: the layer between fault-list generation (src/inject/) and
// execution (src/exec/). A Plan is a raw sweep annotated with golden-run
// knowledge — per entry, either "execute" (with the observed argument word
// and a stable call-site index), "duplicate" (provably equivalent to an
// earlier entry: same injection point, same corrupted word — run once,
// attribute to both), or "pruned" (provably inert, with a machine-readable
// reason). Nothing is silently dropped: every fault of the source sweep
// appears exactly once, in sweep order.
//
// Serialized as a JSONL plan-cache file (header + one line per entry) so an
// expensive golden profile is computed once and reused across campaigns.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "inject/fault.h"
#include "inject/fault_list.h"

namespace dts::plan {

/// Why a fault was dropped from execution. Every reason is conservative:
/// the pruned run provably cannot activate a fault (and therefore cannot
/// move any outcome percentage, whose denominators count activated faults).
enum class PruneReason {
  kFunctionUncalled,      // golden run never called the function at all
  kInvocationNotReached,  // called, but fewer times than the fault's invocation
  kInertCorruption,       // corrupt(golden value) == golden value (no-op write)
};

constexpr PruneReason kAllPruneReasons[] = {
    PruneReason::kFunctionUncalled,
    PruneReason::kInvocationNotReached,
    PruneReason::kInertCorruption,
};

std::string_view to_string(PruneReason r);
std::optional<PruneReason> prune_reason_from_string(std::string_view s);

enum class Disposition { kExecute, kDuplicate, kPruned };

struct PlanEntry {
  inject::FaultSpec fault;
  Disposition disposition = Disposition::kExecute;

  /// kPruned only: why the fault cannot activate.
  PruneReason reason = PruneReason::kFunctionUncalled;

  /// kDuplicate only: index of the kExecute entry whose run doubles as this
  /// fault's run (same function, parameter, invocation and corrupted word).
  std::size_t duplicate_of = 0;

  /// Golden-run observation at this fault's injection point, when reached:
  /// the machine-wide syscall sequence number (a stable call-site index —
  /// the golden run is deterministic) and the observed argument word.
  bool golden_known = false;
  std::uint64_t call_site = 0;
  nt::Word golden_value = 0;

  friend bool operator==(const PlanEntry&, const PlanEntry&) = default;
};

/// Sampling stratum identity: function × fault type.
struct StratumKey {
  nt::Fn fn{};
  inject::FaultType type = inject::FaultType::kZero;

  friend auto operator<=>(const StratumKey&, const StratumKey&) = default;
};

/// "ReadFile/zero" — used in journal records and metric labels.
std::string to_string(const StratumKey& key);

struct Stratum {
  StratumKey key;
  std::vector<std::size_t> members;  // kExecute entry indices, sweep order
};

struct Plan {
  // Campaign identity — a loaded plan is validated against the run
  // configuration so a stale cache cannot silently mis-plan a campaign.
  std::string workload;
  std::string target_image;
  int middleware = 0;
  int watchd_version = 0;
  std::uint64_t seed = 0;
  int iterations = 1;

  std::vector<PlanEntry> entries;  // the full sweep, in sweep order

  std::size_t executable_count() const;
  std::size_t duplicate_count() const;
  std::size_t pruned_count() const;
  std::map<PruneReason, std::size_t> prune_histogram() const;

  /// Entries whose function the golden run reached at all (= what the
  /// profile-restricted exhaustive sweep would execute) — the baseline the
  /// predicted savings are measured against.
  std::size_t reachable_count() const;

  /// Fraction of the reachable sweep the plan avoids executing
  /// (duplicates + inert/invocation prunes), in [0, 1].
  double predicted_savings() const;

  /// kExecute entries grouped into (function × fault type) strata, ordered
  /// by key.
  std::vector<Stratum> strata() const;

  /// Plan-cache file round-trip. parse accepts exactly what serialize emits
  /// and returns nullopt (with *error set) on anything malformed.
  std::string serialize() const;
  static std::optional<Plan> parse(const std::string& text, std::string* error);

  friend bool operator==(const Plan&, const Plan&) = default;
};

/// Order-sensitive FNV-1a fingerprint of a fault space — the campaign's
/// sweep identity. The distributed coordinator (src/dist/) ships this digest
/// to workers, which refuse leases whose digest does not match the campaign
/// they accepted; two processes agreeing on the digest agree on every fault
/// id and its index. The Plan overload additionally folds in each entry's
/// disposition, so a re-pruned plan reads as a different campaign.
std::uint64_t sweep_digest(const inject::FaultList& list);
std::uint64_t sweep_digest(const Plan& plan);

/// The CampaignOptions planning block (consumed by core::run_workload_set).
struct PlanOptions {
  enum class Mode {
    kExhaustive,  // no planner: the plain profile-restricted sweep (default)
    kAuto,        // golden-profile + build the plan for this campaign
    kFromFile,    // load a saved plan-cache file (validated against the run)
  };
  Mode mode = Mode::kExhaustive;

  /// kFromFile: the plan-cache to load.
  std::string plan_file;

  /// When non-empty, the built (or loaded) plan is also written here.
  std::string plan_out;

  /// Adaptive sampling: stop a stratum once the Wilson 95 % confidence
  /// interval on its failure rate is narrower than this half-width. 0 keeps
  /// sampling off — every surviving fault executes, and the aggregate
  /// outcome counts stay byte-identical to the exhaustive sweep.
  double ci_half_width = 0.0;

  /// Minimum activated runs in a stratum before the CI is consulted.
  std::size_t min_stratum_trials = 8;

  /// Runs taken from each live stratum per sampling round.
  std::size_t batch = 8;
};

}  // namespace dts::plan
