#include "plan/profiler.h"

namespace dts::plan {

GoldenProfile golden_profile(const core::RunConfig& base, std::uint64_t campaign_seed,
                             int max_invocations) {
  core::RunConfig cfg = base;
  // Same derivation as core::profile_workload: the golden run and the
  // campaign's profiling pass are one and the same world.
  cfg.seed = sim::Rng::mix(campaign_seed, sim::Rng::hash("profile"));
  cfg.golden_capture = max_invocations;

  core::FaultInjectionRun run(cfg);
  (void)run.execute(std::nullopt);

  GoldenProfile profile;
  profile.target_image = base.workload.target_image;
  profile.profile_seed = cfg.seed;
  profile.activated = run.activated_functions();

  const auto& captured = run.interceptor().captured_calls();
  for (const auto& [fn, calls] : captured) {
    auto& out = profile.calls[fn];
    out.reserve(calls.size());
    for (const auto& c : calls) {
      out.push_back(GoldenCall{c.seq, c.argc, c.args});
    }
  }
  for (nt::Fn fn : profile.activated) {
    profile.invocation_counts[fn] =
        run.interceptor().invocations(base.workload.target_image, fn);
  }
  return profile;
}

}  // namespace dts::plan
