// Adaptive stratified sampler: executes a plan's surviving faults stratum by
// stratum (function × fault type), stopping a stratum early once the Wilson
// 95 % confidence interval on its failure rate is narrower than a configured
// half-width. With the half-width at 0 (the default) sampling is off and the
// sampler degenerates to "every surviving fault, in plan order" — the mode
// whose aggregate outcome counts are byte-identical to the exhaustive sweep.
//
// Determinism: rounds are issued from a fixed seeded order and the stopping
// rule only consults results of fully-recorded earlier rounds (the executor
// barriers between rounds), so the executed-run set is identical at any
// --jobs count.
#pragma once

#include <cstdint>
#include <vector>

#include "plan/plan.h"

namespace dts::plan {

struct SamplerOptions {
  double ci_half_width = 0.0;  // 0 = sampling off: execute everything
  std::size_t min_stratum_trials = 8;
  std::size_t batch = 8;
  std::uint64_t seed = 0;  // campaign seed; orders within-stratum sampling
};

/// Per-stratum sampling state, reported into metrics and the plan digest.
struct StratumProgress {
  StratumKey key;
  std::size_t planned = 0;   // kExecute members in the stratum
  std::size_t issued = 0;    // members handed out for execution
  std::size_t trials = 0;    // recorded runs that activated their fault
  std::size_t failures = 0;  // trials that classified as failure
  bool stopped_early = false;
  double ci_half_width = 1.0;  // current Wilson half-width on the failure rate
};

class AdaptiveSampler {
 public:
  AdaptiveSampler(const Plan& plan, const SamplerOptions& options);

  bool sampling_enabled() const { return options_.ci_half_width > 0.0; }

  /// Entry indices of the next round, ascending. Empty = sampling complete.
  /// Every index of the previous round must be record()ed first: the stop
  /// rule reads the accumulated counts, and issuing before the round is
  /// complete would make the executed set depend on worker schedule.
  std::vector<std::size_t> next_batch();

  /// Records one executed member's classification.
  void record(std::size_t entry_index, bool activated, bool failure);

  /// kExecute entries never issued (strata stopped early). Ascending.
  std::vector<std::size_t> unsampled() const;

  /// Snapshot of every stratum, ordered by key.
  std::vector<StratumProgress> progress() const;

 private:
  struct StratumState {
    StratumProgress progress;
    std::vector<std::size_t> order;  // members in issue order
    std::size_t cursor = 0;          // next index into `order`
  };

  bool stratum_satisfied(const StratumState& s) const;

  SamplerOptions options_;
  std::vector<StratumState> strata_;
  std::vector<int> entry_stratum_;  // entry index -> stratum index (-1 = none)
  std::size_t outstanding_ = 0;     // issued but not yet recorded
};

}  // namespace dts::plan
