// Simulated Apache 1.3.3 for Win32, in the paper's two-process configuration:
// a management process ("Apache1") that spawns and respawns a single worker
// ("Apache2") which serves all HTTP requests. The management process's
// monitor-and-respawn loop is the built-in fault tolerance the paper found
// made external middleware redundant for worker faults.
#pragma once

#include <cstdint>
#include <string>

#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts::apps {

struct ApacheConfig {
  std::string service_name = "Apache";
  std::string master_image = "apache.exe";
  std::string worker_image = "apache_child.exe";
  std::uint16_t port = 80;
  std::string doc_root = "C:\\Apache\\htdocs";
  std::string conf_path = "C:\\Apache\\conf\\httpd.ini";
  std::string log_dir = "C:\\Apache\\logs";

  /// CPU costs at cpu_scale 1.0 (the 100 MHz Pentium).
  sim::Duration master_init_cost = sim::Duration::millis(150);
  /// Work between the Running report and the worker spawn (log setup etc.).
  sim::Duration post_running_delay = sim::Duration::millis(700);
  sim::Duration worker_init_cost = sim::Duration::millis(400);
  sim::Duration static_request_cost = sim::Duration::millis(4400);
  sim::Duration cgi_startup_cost = sim::Duration::millis(8200);
  sim::Duration cgi_timeout = sim::Duration::seconds(30);
  sim::Duration respawn_delay = sim::Duration::millis(250);

  /// The service's start wait hint. Apache's NT service wrapper declared a
  /// generous hint — the reason its start-pending hangs took so long to
  /// clear (paper §4.2).
  sim::Duration start_wait_hint = sim::Duration::seconds(45);

  /// Size of the static document the paper's HttpClient fetches.
  std::size_t index_size = 115 * 1024;

  /// Worker-pool size. The paper pins this to ONE child: "Configuring Apache
  /// for only one child process guarantees that the same child process will
  /// pick up the request each time, thus ensuring reproducible results."
  /// Values > 1 restore Apache's default pool; the ablation_multiprocess
  /// bench shows the activation nondeterminism that motivated the pin.
  int max_children = 1;
};

/// Installs the Apache programs, document tree, configuration file and SCM
/// service registration on a machine. Returns the static index.html content
/// (what a correct response must carry).
std::string install_apache(nt::Machine& machine, nt::net::Network& network,
                           const ApacheConfig& cfg = {});

/// Deterministic content of the 115 kB static document.
std::string apache_index_content(std::size_t size);

}  // namespace dts::apps
