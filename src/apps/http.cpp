#include "apps/http.h"

#include <sstream>

namespace dts::apps::http {

namespace {

std::string trim(std::string v) {
  while (!v.empty() && (v.back() == '\r' || v.back() == ' ' || v.back() == '\t')) v.pop_back();
  std::size_t i = 0;
  while (i < v.size() && (v[i] == ' ' || v[i] == '\t')) ++i;
  return v.substr(i);
}

}  // namespace

std::optional<Request> parse_request(const std::string& raw) {
  std::istringstream in(raw);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  line = trim(line);
  Request req;
  std::istringstream rl(line);
  if (!(rl >> req.method >> req.target >> req.version)) return std::nullopt;
  if (req.target.empty() || req.target[0] != '/') return std::nullopt;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    req.headers[trim(line.substr(0, colon))] = trim(line.substr(colon + 1));
  }
  return req;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string format_response(int status, std::string_view content_type, std::string_view body,
                            std::string_view server_name) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << ' ' << reason_phrase(status) << "\r\n"
      << "Server: " << server_name << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

sim::CoTask<std::optional<Request>> read_request(Ctx c, nt::net::Socket& sock,
                                                 sim::Duration timeout) {
  auto raw = co_await sock.recv_until(c, "\r\n\r\n", 65536, timeout);
  if (!raw) co_return std::nullopt;
  co_return parse_request(*raw);
}

std::string expected_cgi_body(const std::string& query) {
  // Deterministic ~1 kB document derived from the query string.
  std::string body = "<html><head><title>CGI Result</title></head><body>\n";
  body += "<h1>CGI output for query: " + query + "</h1>\n";
  const std::uint64_t h = sim::Rng::hash(query);
  for (int i = 0; i < 12; ++i) {
    char line[80];
    std::snprintf(line, sizeof line, "<p>row %02d value %016llx</p>\n", i,
                  static_cast<unsigned long long>(h ^ (0x9E3779B97F4A7C15ULL * (i + 1))));
    body += line;
  }
  body += "</body></html>\n";
  return body;
}

void register_cgi_program(nt::Machine& machine, sim::Duration startup_cost) {
  machine.register_program("cgi.exe", [startup_cost](Ctx c) -> sim::Task {
    Api api(c);
    // Interpreter startup: the dominant CGI cost on a 100 MHz machine.
    co_await api.cpu(startup_cost);

    const Ptr qbuf = api.buf(512);
    Word n = co_await api(Fn::GetEnvironmentVariableA, api.str("QUERY_STRING").addr,
                          qbuf.addr, 512);
    const std::string query = n > 0 ? api.mem().read_cstr(qbuf) : "";
    (void)co_await api(Fn::GetEnvironmentVariableA, api.str("REQUEST_METHOD").addr,
                       qbuf.addr, 512);

    const std::string doc = "Content-Type: text/html\r\n\r\n" + expected_cgi_body(query);
    const Word h_out = co_await api(Fn::GetStdHandle, nt::kStdOutputHandle);
    const Ptr out = api.buf(static_cast<Word>(doc.size()));
    api.mem().write_bytes(out, doc);
    (void)co_await api(Fn::WriteFile, h_out, out.addr, static_cast<Word>(doc.size()), 0, 0);
    (void)co_await api(Fn::ExitProcess, 0);
  });
}

sim::CoTask<std::optional<std::string>> run_cgi(const Api& api, const std::string& cgi_image,
                                                const Request& req, sim::Duration timeout) {
  // 1. Pipe for the child's stdout.
  const Ptr handle_pair = api.buf(8);
  if (co_await api(Fn::CreatePipe, handle_pair.addr, handle_pair.addr + 4, 0, 65536) == 0) {
    co_return std::nullopt;
  }
  const Word h_read = api.read_u32(handle_pair);
  const Word h_write = api.read_u32(Ptr{handle_pair.addr + 4});

  // 2. CGI environment block.
  std::string env_block;
  env_block += "REQUEST_METHOD=" + req.method + '\0';
  env_block += "QUERY_STRING=" + req.query() + '\0';
  env_block += "SCRIPT_NAME=" + req.path() + '\0';
  env_block += "SERVER_PROTOCOL=HTTP/1.0" + std::string(1, '\0');
  env_block += '\0';
  const Ptr env = api.buf(static_cast<Word>(env_block.size()));
  api.mem().write_bytes(env, env_block);

  // 3. STARTUPINFO with stdout redirected into the pipe's write end.
  const Ptr si = api.buf(68);
  api.mem().write_u32(si, 68);                         // cb
  api.mem().write_u32(si.offset(44), 0x100);           // STARTF_USESTDHANDLES
  api.mem().write_u32(si.offset(60), h_write);         // hStdOutput
  api.mem().write_u32(si.offset(64), h_write);         // hStdError
  const Ptr pi = api.buf(16);
  const Ptr cmd = api.str(cgi_image + " " + req.path());

  const Word ok = co_await api(Fn::CreateProcessA, 0, cmd.addr, 0, 0, 1, 0, env.addr, 0,
                               si.addr, pi.addr);
  if (ok == 0) {
    (void)co_await api(Fn::CloseHandle, h_read);
    (void)co_await api(Fn::CloseHandle, h_write);
    co_return std::nullopt;
  }
  const Word h_proc = api.read_u32(pi);
  const Word h_thread = api.read_u32(pi.offset(4));

  // 4. Close our copy of the write end, or we will never see EOF. (A fault
  // corrupting this CloseHandle argument makes the read below hang until the
  // timeout — a real failure DTS provoked.)
  (void)co_await api(Fn::CloseHandle, h_write);

  // 5. Drain the pipe until broken-pipe EOF or timeout.
  const sim::TimePoint deadline = api.machine().sim().now() + timeout;
  std::string output;
  const Ptr buffer = api.buf(4096);
  const Ptr n_read = api.buf(4);
  const Ptr avail = api.buf(4);
  bool timed_out = false;
  for (;;) {
    if (api.machine().sim().now() >= deadline) {
      timed_out = true;
      break;
    }
    // Poll with PeekNamedPipe so the read cannot block past the deadline
    // (the era's standard CGI drain pattern).
    if (co_await api(Fn::PeekNamedPipe, h_read, 0, 0, 0, avail.addr, 0) == 0) break;
    if (api.read_u32(avail) == 0) {
      const Ptr code = api.buf(4);
      (void)co_await api(Fn::GetExitCodeProcess, h_proc, code.addr);
      const bool child_done = api.read_u32(code) != nt::kStillActive;
      api.mem().free(code);
      if (child_done) {
        // Child finished and the pipe is empty: all output collected.
        break;
      }
      co_await nt::sleep_in_sim(api.ctx(), sim::Duration::millis(50));
      continue;
    }
    if (co_await api(Fn::ReadFile, h_read, buffer.addr, 4096, n_read.addr, 0) == 0) {
      break;  // ERROR_BROKEN_PIPE: CGI closed its end (exit or crash)
    }
    const Word n = api.read_u32(n_read);
    if (n == 0) break;
    output += api.mem().read_bytes(buffer, n);
  }

  (void)co_await api(Fn::WaitForSingleObject, h_proc, 1000);
  (void)co_await api(Fn::CloseHandle, h_read);
  (void)co_await api(Fn::CloseHandle, h_proc);
  (void)co_await api(Fn::CloseHandle, h_thread);

  if (timed_out || output.empty()) co_return std::nullopt;
  // Strip the CGI header block; the body follows the first blank line.
  const auto sep = output.find("\r\n\r\n");
  if (sep == std::string::npos) co_return std::nullopt;
  co_return output.substr(sep + 4);
}

}  // namespace dts::apps::http
