#include "apps/sql_engine.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace dts::apps::sql {

namespace {

std::string lower(std::string v) {
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v;
}

bool iequal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  return std::get<std::string>(v);
}

// ---------------------------------------------------------------- storage

int Table::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (iequal(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

bool Table::insert(std::vector<Value> row) {
  if (row.size() != columns_.size()) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const bool is_int = std::holds_alternative<std::int64_t>(row[i]);
    if (is_int != (columns_[i].type == ColumnType::kInt)) return false;
  }
  rows_.push_back(std::move(row));
  return true;
}

void Table::remove_rows(const std::vector<std::size_t>& indices) {
  // Indices must be removed from the back so earlier ones stay valid.
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.rbegin(), sorted.rend());
  for (std::size_t idx : sorted) {
    if (idx < rows_.size()) rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

Table* Database::find(std::string_view name) {
  auto it = tables_.find(lower(std::string(name)));
  return it == tables_.end() ? nullptr : &it->second;
}

const Table* Database::find(std::string_view name) const {
  auto it = tables_.find(lower(std::string(name)));
  return it == tables_.end() ? nullptr : &it->second;
}

bool Database::create(std::string name, std::vector<Column> columns) {
  const std::string key = lower(name);
  if (tables_.contains(key)) return false;
  tables_.emplace(key, Table{std::move(name), std::move(columns)});
  return true;
}

bool Database::drop(std::string_view name) {
  return tables_.erase(lower(std::string(name))) > 0;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  for (const auto& [_, t] : tables_) out.push_back(t.name());
  return out;
}

std::string Database::serialize() const {
  // Line-oriented image: T <name> <col:type>... then R <values...> (tab-sep).
  std::ostringstream out;
  for (const auto& [_, t] : tables_) {
    out << "T\t" << t.name();
    for (const auto& c : t.columns()) {
      out << '\t' << c.name << ':' << (c.type == ColumnType::kInt ? "int" : "text");
    }
    out << '\n';
    for (const auto& row : t.rows()) {
      out << 'R';
      for (const auto& v : row) out << '\t' << to_string(v);
      out << '\n';
    }
  }
  return out.str();
}

std::optional<Database> Database::deserialize(const std::string& image) {
  Database db;
  Table* current = nullptr;
  std::istringstream in(image);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const auto tab = line.find('\t', start);
      fields.push_back(line.substr(start, tab - start));
      if (tab == std::string::npos) break;
      start = tab + 1;
    }
    if (fields[0] == "T") {
      if (fields.size() < 3) return std::nullopt;
      std::vector<Column> cols;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const auto colon = fields[i].find(':');
        if (colon == std::string::npos) return std::nullopt;
        Column c;
        c.name = fields[i].substr(0, colon);
        const std::string type = fields[i].substr(colon + 1);
        if (type == "int") {
          c.type = ColumnType::kInt;
        } else if (type == "text") {
          c.type = ColumnType::kText;
        } else {
          return std::nullopt;
        }
        cols.push_back(std::move(c));
      }
      if (!db.create(fields[1], std::move(cols))) return std::nullopt;
      current = db.find(fields[1]);
    } else if (fields[0] == "R") {
      if (current == nullptr || fields.size() != current->columns().size() + 1) {
        return std::nullopt;
      }
      std::vector<Value> row;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (current->columns()[i - 1].type == ColumnType::kInt) {
          std::int64_t v = 0;
          const auto& f = fields[i];
          auto [p, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
          if (ec != std::errc{} || p != f.data() + f.size()) return std::nullopt;
          row.emplace_back(v);
        } else {
          row.emplace_back(fields[i]);
        }
      }
      if (!current->insert(std::move(row))) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return db;
}

// ---------------------------------------------------------------- lexer

std::optional<std::vector<Token>> lex(const std::string& statement, std::string* error) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto n = statement.size();
  while (i < n) {
    const char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(statement[j])) != 0 ||
                       statement[j] == '_')) {
        ++j;
      }
      out.push_back({Token::Kind::kIdent, statement.substr(i, j - i)});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(statement[i + 1])) != 0)) {
      std::size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(statement[j])) != 0) ++j;
      out.push_back({Token::Kind::kNumber, statement.substr(i, j - i)});
      i = j;
    } else if (c == '\'') {
      std::string text;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (statement[j] == '\'') {
          if (j + 1 < n && statement[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(statement[j]);
        ++j;
      }
      if (!closed) {
        if (error != nullptr) *error = "unterminated string literal";
        return std::nullopt;
      }
      out.push_back({Token::Kind::kString, std::move(text)});
      i = j;
    } else if (c == '<' || c == '>' || c == '!') {
      // two-char operators <=, >=, <>, !=
      if (i + 1 < n && (statement[i + 1] == '=' || (c == '<' && statement[i + 1] == '>'))) {
        out.push_back({Token::Kind::kSymbol, statement.substr(i, 2)});
        i += 2;
      } else if (c == '!') {
        if (error != nullptr) *error = "unexpected '!'";
        return std::nullopt;
      } else {
        out.push_back({Token::Kind::kSymbol, std::string(1, c)});
        ++i;
      }
    } else if (c == '=' || c == ',' || c == '(' || c == ')' || c == '*' || c == ';') {
      out.push_back({Token::Kind::kSymbol, std::string(1, c)});
      ++i;
    } else {
      if (error != nullptr) *error = std::string("unexpected character '") + c + "'";
      return std::nullopt;
    }
  }
  out.push_back({Token::Kind::kEnd, ""});
  return out;
}

// ---------------------------------------------------------------- parser/executor

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  const Token& peek() const { return toks_[pos_]; }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool accept_kw(std::string_view kw) {
    if (peek().kind == Token::Kind::kIdent && iequal(peek().text, kw)) {
      take();
      return true;
    }
    return false;
  }
  bool accept_sym(std::string_view s) {
    if (peek().kind == Token::Kind::kSymbol && peek().text == s) {
      take();
      return true;
    }
    return false;
  }
  std::optional<std::string> ident() {
    if (peek().kind != Token::Kind::kIdent) return std::nullopt;
    return take().text;
  }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

QueryResult fail(std::string msg) {
  QueryResult r;
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

std::optional<Value> parse_literal(Parser& p, ColumnType expected) {
  if (p.peek().kind == Token::Kind::kNumber) {
    if (expected != ColumnType::kInt) return std::nullopt;
    std::int64_t v = 0;
    const std::string text = p.take().text;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{}) return std::nullopt;
    return Value{v};
  }
  if (p.peek().kind == Token::Kind::kString) {
    if (expected != ColumnType::kText) return std::nullopt;
    return Value{p.take().text};
  }
  return std::nullopt;
}

struct Predicate {
  int column = -1;
  std::string op;  // = < > <= >= <>
  Value rhs;

  bool matches(const std::vector<Value>& row) const {
    const Value& lhs = row[static_cast<std::size_t>(column)];
    auto cmp = [&]() -> int {
      if (const auto* li = std::get_if<std::int64_t>(&lhs)) {
        const auto ri = std::get<std::int64_t>(rhs);
        return *li < ri ? -1 : (*li == ri ? 0 : 1);
      }
      const auto& ls = std::get<std::string>(lhs);
      const auto& rs = std::get<std::string>(rhs);
      return ls < rs ? -1 : (ls == rs ? 0 : 1);
    }();
    if (op == "=") return cmp == 0;
    if (op == "<") return cmp < 0;
    if (op == ">") return cmp > 0;
    if (op == "<=") return cmp <= 0;
    if (op == ">=") return cmp >= 0;
    if (op == "<>" || op == "!=") return cmp != 0;
    return false;
  }
};

/// Parses "WHERE col op literal" if present. Returns false on syntax errors.
bool parse_where(Parser& p, const Table& table, std::optional<Predicate>* out,
                 std::string* error) {
  if (!p.accept_kw("where")) {
    out->reset();
    return true;
  }
  auto col = p.ident();
  if (!col) {
    *error = "expected column name after WHERE";
    return false;
  }
  const int idx = table.column_index(*col);
  if (idx < 0) {
    *error = "unknown column '" + *col + "'";
    return false;
  }
  if (p.peek().kind != Token::Kind::kSymbol) {
    *error = "expected comparison operator";
    return false;
  }
  const std::string op = p.take().text;
  if (op != "=" && op != "<" && op != ">" && op != "<=" && op != ">=" && op != "<>") {
    *error = "unsupported operator '" + op + "'";
    return false;
  }
  auto rhs = parse_literal(p, table.columns()[static_cast<std::size_t>(idx)].type);
  if (!rhs) {
    *error = "type mismatch or bad literal in WHERE";
    return false;
  }
  *out = Predicate{idx, op, *rhs};
  return true;
}

QueryResult exec_create(Database& db, Parser& p) {
  if (!p.accept_kw("table")) return fail("expected TABLE after CREATE");
  auto name = p.ident();
  if (!name) return fail("expected table name");
  if (!p.accept_sym("(")) return fail("expected '('");
  std::vector<Column> cols;
  for (;;) {
    auto col = p.ident();
    if (!col) return fail("expected column name");
    Column c;
    c.name = *col;
    if (p.accept_kw("int") || p.accept_kw("integer")) {
      c.type = ColumnType::kInt;
    } else if (p.accept_kw("text") || p.accept_kw("varchar")) {
      // optional (N) length suffix
      if (p.accept_sym("(")) {
        if (p.peek().kind != Token::Kind::kNumber) return fail("expected length");
        p.take();
        if (!p.accept_sym(")")) return fail("expected ')'");
      }
      c.type = ColumnType::kText;
    } else {
      return fail("expected column type");
    }
    cols.push_back(std::move(c));
    if (p.accept_sym(",")) continue;
    if (p.accept_sym(")")) break;
    return fail("expected ',' or ')'");
  }
  if (cols.empty()) return fail("a table needs at least one column");
  if (!db.create(*name, std::move(cols))) return fail("table already exists");
  QueryResult r;
  r.ok = true;
  return r;
}

QueryResult exec_insert(Database& db, Parser& p) {
  if (!p.accept_kw("into")) return fail("expected INTO after INSERT");
  auto name = p.ident();
  if (!name) return fail("expected table name");
  Table* t = db.find(*name);
  if (t == nullptr) return fail("unknown table '" + *name + "'");
  if (!p.accept_kw("values")) return fail("expected VALUES");
  if (!p.accept_sym("(")) return fail("expected '('");
  std::vector<Value> row;
  for (std::size_t i = 0;; ++i) {
    if (i >= t->columns().size()) return fail("too many values");
    auto v = parse_literal(p, t->columns()[i].type);
    if (!v) return fail("bad literal for column " + t->columns()[i].name);
    row.push_back(*v);
    if (p.accept_sym(",")) continue;
    if (p.accept_sym(")")) break;
    return fail("expected ',' or ')'");
  }
  if (!t->insert(std::move(row))) return fail("arity mismatch");
  QueryResult r;
  r.ok = true;
  r.affected = 1;
  return r;
}

QueryResult exec_select(Database& db, Parser& p) {
  std::vector<std::string> wanted;
  bool star = false;
  if (p.accept_sym("*")) {
    star = true;
  } else {
    for (;;) {
      auto col = p.ident();
      if (!col) return fail("expected column name");
      wanted.push_back(*col);
      if (!p.accept_sym(",")) break;
    }
  }
  if (!p.accept_kw("from")) return fail("expected FROM");
  auto name = p.ident();
  if (!name) return fail("expected table name");
  const Table* t = db.find(*name);
  if (t == nullptr) return fail("unknown table '" + *name + "'");

  std::vector<int> indices;
  QueryResult r;
  if (star) {
    for (std::size_t i = 0; i < t->columns().size(); ++i) {
      indices.push_back(static_cast<int>(i));
      r.column_names.push_back(t->columns()[i].name);
    }
  } else {
    for (const auto& col : wanted) {
      const int idx = t->column_index(col);
      if (idx < 0) return fail("unknown column '" + col + "'");
      indices.push_back(idx);
      r.column_names.push_back(t->columns()[static_cast<std::size_t>(idx)].name);
    }
  }

  std::optional<Predicate> pred;
  std::string err;
  if (!parse_where(p, *t, &pred, &err)) return fail(err);

  int order_col = -1;
  bool descending = false;
  if (p.accept_kw("order")) {
    if (!p.accept_kw("by")) return fail("expected BY after ORDER");
    auto col = p.ident();
    if (!col) return fail("expected column after ORDER BY");
    order_col = t->column_index(*col);
    if (order_col < 0) return fail("unknown column '" + *col + "'");
    if (p.accept_kw("desc")) {
      descending = true;
    } else {
      (void)p.accept_kw("asc");
    }
  }

  std::vector<const std::vector<Value>*> selected;
  for (const auto& row : t->rows()) {
    if (!pred || pred->matches(row)) selected.push_back(&row);
  }
  if (order_col >= 0) {
    std::stable_sort(selected.begin(), selected.end(),
                     [order_col, descending](const auto* a, const auto* b) {
                       const Value& x = (*a)[static_cast<std::size_t>(order_col)];
                       const Value& y = (*b)[static_cast<std::size_t>(order_col)];
                       const bool less = x < y;
                       return descending ? y < x : less;
                     });
  }
  for (const auto* row : selected) {
    std::vector<Value> out;
    for (int idx : indices) out.push_back((*row)[static_cast<std::size_t>(idx)]);
    r.rows.push_back(std::move(out));
  }
  r.ok = true;
  return r;
}

QueryResult exec_delete(Database& db, Parser& p) {
  if (!p.accept_kw("from")) return fail("expected FROM after DELETE");
  auto name = p.ident();
  if (!name) return fail("expected table name");
  Table* t = db.find(*name);
  if (t == nullptr) return fail("unknown table '" + *name + "'");
  std::optional<Predicate> pred;
  std::string err;
  if (!parse_where(p, *t, &pred, &err)) return fail(err);
  std::vector<std::size_t> doomed;
  for (std::size_t i = 0; i < t->rows().size(); ++i) {
    if (!pred || pred->matches(t->rows()[i])) doomed.push_back(i);
  }
  t->remove_rows(doomed);
  QueryResult r;
  r.ok = true;
  r.affected = doomed.size();
  return r;
}

QueryResult exec_update(Database& db, Parser& p) {
  auto name = p.ident();
  if (!name) return fail("expected table name after UPDATE");
  Table* t = db.find(*name);
  if (t == nullptr) return fail("unknown table '" + *name + "'");
  if (!p.accept_kw("set")) return fail("expected SET");
  auto col = p.ident();
  if (!col) return fail("expected column name");
  const int idx = t->column_index(*col);
  if (idx < 0) return fail("unknown column '" + *col + "'");
  if (!p.accept_sym("=")) return fail("expected '='");
  auto value = parse_literal(p, t->columns()[static_cast<std::size_t>(idx)].type);
  if (!value) return fail("bad literal");
  std::optional<Predicate> pred;
  std::string err;
  if (!parse_where(p, *t, &pred, &err)) return fail(err);
  QueryResult r;
  for (auto& row : t->mutable_rows()) {
    if (!pred || pred->matches(row)) {
      row[static_cast<std::size_t>(idx)] = *value;
      ++r.affected;
    }
  }
  r.ok = true;
  return r;
}

}  // namespace

std::string QueryResult::to_text() const {
  std::ostringstream out;
  if (!ok) {
    out << "ERROR " << error << '\n';
    return out.str();
  }
  if (!column_names.empty()) {
    out << "COLS";
    for (const auto& c : column_names) out << '\t' << c;
    out << '\n';
    for (const auto& row : rows) {
      out << "ROW";
      for (const auto& v : row) out << '\t' << to_string(v);
      out << '\n';
    }
    out << "DONE " << rows.size() << '\n';
  } else {
    out << "OK " << affected << '\n';
  }
  return out.str();
}

QueryResult execute(Database& db, const std::string& statement) {
  std::string lex_error;
  auto tokens = lex(statement, &lex_error);
  if (!tokens) return fail("syntax error: " + lex_error);
  Parser p(std::move(*tokens));

  if (p.accept_kw("create")) return exec_create(db, p);
  if (p.accept_kw("insert")) return exec_insert(db, p);
  if (p.accept_kw("select")) return exec_select(db, p);
  if (p.accept_kw("delete")) return exec_delete(db, p);
  if (p.accept_kw("update")) return exec_update(db, p);
  if (p.accept_kw("drop")) {
    if (!p.accept_kw("table")) return fail("expected TABLE after DROP");
    auto name = p.ident();
    if (!name) return fail("expected table name");
    if (!db.drop(*name)) return fail("unknown table '" + *name + "'");
    QueryResult r;
    r.ok = true;
    return r;
  }
  return fail("unsupported statement");
}

}  // namespace dts::apps::sql
