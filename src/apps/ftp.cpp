#include "apps/ftp.h"

namespace dts::apps::ftp {

namespace {

using nt::Ctx;
using nt::Fn;
using nt::Ptr;
using nt::Word;

/// Reads one CRLF-terminated command line from the control connection.
sim::CoTask<std::optional<std::string>> read_command(Ctx c, nt::net::Socket& sock,
                                                     sim::Duration timeout) {
  auto line = co_await sock.recv_until(c, "\r\n", 1024, timeout);
  if (!line) co_return std::nullopt;
  line->resize(line->size() - 2);  // strip CRLF
  co_return line;
}

std::pair<std::string, std::string> split_command(const std::string& line) {
  const auto sp = line.find(' ');
  std::string verb = line.substr(0, sp);
  for (char& ch : verb) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  return {verb, sp == std::string::npos ? "" : line.substr(sp + 1)};
}

/// Serves one logged-in control session. Returns when the client QUITs,
/// disconnects or idles out.
sim::CoTask<void> serve_session(Ctx c, const Api& api, const FtpConfig& cfg,
                                nt::net::Network* net,
                                std::shared_ptr<nt::net::Socket> ctrl,
                                std::uint16_t* next_pasv_port) {
  ctrl->send("220 Microsoft FTP Service (Version 3.0).\r\n");
  bool authed = false;
  std::string cwd = "/";
  std::shared_ptr<nt::net::Listener> pasv;

  for (;;) {
    auto line = co_await read_command(c, *ctrl, cfg.session_idle_timeout);
    if (!line) co_return;  // idle timeout or disconnect
    co_await api.cpu(cfg.command_cost);
    auto [verb, arg] = split_command(*line);

    if (verb == "USER") {
      ctrl->send(arg == "anonymous" ? "331 Anonymous access allowed.\r\n"
                                    : "331 Password required.\r\n");
    } else if (verb == "PASS") {
      authed = true;
      ctrl->send("230 User logged in.\r\n");
    } else if (!authed) {
      ctrl->send("530 Please login with USER and PASS.\r\n");
    } else if (verb == "SYST") {
      ctrl->send("215 Windows_NT version 4.0\r\n");
    } else if (verb == "TYPE") {
      ctrl->send("200 Type set.\r\n");
    } else if (verb == "PWD") {
      ctrl->send("257 \"" + cwd + "\" is current directory.\r\n");
    } else if (verb == "CWD") {
      cwd = arg.empty() ? "/" : arg;
      ctrl->send("250 CWD command successful.\r\n");
    } else if (verb == "PASV") {
      const std::uint16_t port = (*next_pasv_port)++;
      pasv = net->listen(api.machine().name(), port);
      if (pasv == nullptr) {
        ctrl->send("425 Can't open data connection.\r\n");
      } else {
        // 227 h1,h2,h3,h4,p1,p2 — the host part is symbolic here.
        ctrl->send("227 Entering Passive Mode (127,0,0,1," +
                   std::to_string(port / 256) + "," + std::to_string(port % 256) +
                   ").\r\n");
      }
    } else if (verb == "RETR" || verb == "LIST") {
      if (pasv == nullptr) {
        ctrl->send("425 Use PASV first.\r\n");
        continue;
      }
      // Resolve the payload BEFORE accepting, through injectable syscalls.
      std::string payload;
      bool ok = true;
      if (verb == "LIST") {
        // Directory listing via FindFirstFile/FindNextFile.
        const Ptr data = api.buf(320);
        const Word h = co_await api(Fn::FindFirstFileA,
                                    api.str(cfg.root + "\\*").addr, data.addr);
        if (h != nt::kInvalidHandleValue) {
          payload += api.mem().read_cstr(data.offset(44)) + "\r\n";
          while (co_await api(Fn::FindNextFileA, h, data.addr) != 0) {
            payload += api.mem().read_cstr(data.offset(44)) + "\r\n";
          }
          (void)co_await api(Fn::FindClose, h);
        }
      } else {
        std::string rel = arg;
        for (char& ch : rel) {
          if (ch == '/') ch = '\\';
        }
        if (!rel.empty() && rel.front() != '\\') rel = "\\" + rel;
        auto content = co_await read_file_syscall(api, cfg.root + rel);
        if (content) {
          payload = std::move(*content);
        } else {
          ok = false;
        }
      }
      if (!ok) {
        ctrl->send("550 " + arg + ": The system cannot find the file specified.\r\n");
        pasv.reset();
        continue;
      }
      ctrl->send("150 Opening BINARY mode data connection.\r\n");
      auto data_sock = co_await pasv->accept(c, sim::Duration::seconds(20));
      pasv.reset();  // one transfer per PASV
      if (data_sock == nullptr) {
        ctrl->send("425 Can't open data connection.\r\n");
        continue;
      }
      data_sock->send(payload);
      // Give the payload time to drain before the FIN (ordering is handled
      // by the stream, but the explicit close should follow the data).
      data_sock->close();
      ctrl->send("226 Transfer complete.\r\n");
    } else if (verb == "QUIT") {
      ctrl->send("221 Goodbye.\r\n");
      co_return;
    } else {
      ctrl->send("502 Command not implemented.\r\n");
    }
  }
}

}  // namespace

sim::Task ftp_service(Ctx c, FtpConfig cfg, nt::net::Network* net) {
  Api api(c);
  // Service-side syscall footprint: verify the FTP root exists and open the
  // transfer log.
  (void)co_await api(Fn::GetFileAttributesA, api.str(cfg.root).addr);
  const Word h_log =
      co_await api(Fn::CreateFileA, api.str(cfg.root + "\\..\\ftpsvc.log").addr,
                   nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);
  co_await log_line(api, h_log, "#Software: Microsoft FTP Service 3.0");

  auto listener = net->listen(api.machine().name(), cfg.control_port);
  if (listener == nullptr) co_return;  // port taken: FTP disabled

  std::uint16_t next_pasv_port = cfg.pasv_port_base;
  for (;;) {
    auto ctrl = co_await listener->accept(c);
    if (ctrl == nullptr) continue;
    co_await serve_session(c, api, cfg, net, std::move(ctrl), &next_pasv_port);
    co_await log_line(api, h_log, "session closed");
  }
}

sim::CoTask<std::optional<std::string>> ftp_fetch(Ctx c, nt::net::Network* net,
                                                  const std::string& server_machine,
                                                  std::uint16_t port,
                                                  const std::string& path,
                                                  sim::Duration timeout) {
  const sim::TimePoint deadline = c.m().sim().now() + timeout;
  auto remaining = [&]() -> sim::Duration { return deadline - c.m().sim().now(); };

  auto ctrl = co_await net->connect(c, server_machine, port);
  if (ctrl == nullptr) co_return std::nullopt;

  auto expect = [&](const char* code) -> sim::CoTask<bool> {
    auto line = co_await ctrl->recv_until(c, "\r\n", 1024, remaining());
    co_return line.has_value() && line->rfind(code, 0) == 0;
  };

  if (!co_await expect("220")) co_return std::nullopt;
  ctrl->send("USER anonymous\r\n");
  if (!co_await expect("331")) co_return std::nullopt;
  ctrl->send("PASS dts@bell-labs.com\r\n");
  if (!co_await expect("230")) co_return std::nullopt;
  ctrl->send("TYPE I\r\n");
  if (!co_await expect("200")) co_return std::nullopt;

  ctrl->send("PASV\r\n");
  auto pasv_line = co_await ctrl->recv_until(c, "\r\n", 1024, remaining());
  if (!pasv_line || pasv_line->rfind("227", 0) != 0) co_return std::nullopt;
  // Parse "(...,p1,p2)".
  const auto open_paren = pasv_line->find('(');
  const auto close_paren = pasv_line->find(')');
  if (open_paren == std::string::npos || close_paren == std::string::npos) {
    co_return std::nullopt;
  }
  std::vector<int> parts;
  std::string inside = pasv_line->substr(open_paren + 1, close_paren - open_paren - 1);
  std::size_t start = 0;
  while (start <= inside.size()) {
    auto comma = inside.find(',', start);
    if (comma == std::string::npos) comma = inside.size();
    parts.push_back(std::atoi(inside.substr(start, comma - start).c_str()));
    start = comma + 1;
  }
  if (parts.size() != 6) co_return std::nullopt;
  const auto data_port = static_cast<std::uint16_t>(parts[4] * 256 + parts[5]);

  ctrl->send("RETR " + path + "\r\n");
  if (!co_await expect("150")) co_return std::nullopt;

  auto data = co_await net->connect(c, server_machine, data_port);
  if (data == nullptr) co_return std::nullopt;
  std::string payload;
  for (;;) {
    const sim::Duration left = remaining();
    if (left <= sim::Duration{}) co_return std::nullopt;
    auto chunk = co_await data->recv(c, 65536, left);
    if (!chunk) co_return std::nullopt;  // timeout
    if (chunk->empty()) break;           // transfer complete
    payload += *chunk;
  }
  if (!co_await expect("226")) co_return std::nullopt;
  ctrl->send("QUIT\r\n");
  co_return payload;
}

}  // namespace dts::apps::ftp
