// Helpers for writing simulated NT application code.
//
// Api wraps the Kernel32 dispatcher with the calling context, so server code
// reads like Win32 code: `co_await api(Fn::CreateFileA, name, ...)`. Every
// call still goes through the single injectable dispatcher.
#pragma once

#include <string>
#include <string_view>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::apps {

using nt::Ctx;
using nt::Fn;
using nt::Ptr;
using nt::Word;

class Api {
 public:
  explicit Api(Ctx c) : c_(c) {}

  Ctx ctx() const { return c_; }
  nt::Machine& machine() const { return c_.m(); }
  nt::Process& proc() const { return *c_.process; }
  nt::VirtualMemory& mem() const { return c_.process->mem(); }

  /// Invokes a KERNEL32 function (the injectable surface).
  template <typename... A>
  sim::CoTask<Word> operator()(Fn fn, A... args) const {
    return c_.m().k32().call(c_, fn, static_cast<Word>(args)...);
  }

  /// Places a NUL-terminated string in the process address space.
  Ptr str(std::string_view s) const { return mem().alloc_cstr(s); }

  /// Allocates a raw buffer.
  Ptr buf(Word size) const { return mem().alloc(size); }

  /// Reads back an output string the kernel wrote into a buffer.
  std::string read_str(Ptr p) const { return mem().read_cstr(p); }
  Word read_u32(Ptr p) const { return mem().read_u32(p); }

  /// Burns simulated CPU time (scaled by the machine's speed). Models the
  /// application's own computation between syscalls.
  sim::CoTask<void> cpu(sim::Duration d) const {
    return nt::sleep_in_sim(c_, c_.m().cost(d));
  }

  /// Last Win32 error of the calling thread (without a syscall — used by app
  /// code whose error handling the experiment does not target).
  nt::Dword last_error() const { return c_.thread().last_error; }

 private:
  Ctx c_;
};

/// Reads an entire file through the syscall surface. Returns std::nullopt on
/// any error. Burns I/O time proportional to size.
inline sim::CoTask<std::optional<std::string>> read_file_syscall(const Api& api,
                                                                 const std::string& path,
                                                                 Word chunk_size = 16384) {
  const Word h = co_await api(Fn::CreateFileA, api.str(path).addr, nt::kGenericRead, 1, 0,
                              nt::kOpenExisting, 0, 0);
  if (h == nt::kInvalidHandleValue) co_return std::nullopt;
  std::string out;
  const Ptr buffer = api.buf(chunk_size);
  const Ptr n_read = api.buf(4);
  for (;;) {
    if (co_await api(Fn::ReadFile, h, buffer.addr, chunk_size, n_read.addr, 0) == 0) {
      (void)co_await api(Fn::CloseHandle, h);
      co_return std::nullopt;
    }
    const Word n = api.read_u32(n_read);
    if (n == 0) break;
    out += api.mem().read_bytes(buffer, n);
  }
  (void)co_await api(Fn::CloseHandle, h);
  co_return out;
}

/// Appends one line to a log file through the syscall surface; the handle is
/// owned by the caller. Failures are ignored (as era server code did).
inline sim::CoTask<void> log_line(const Api& api, Word log_handle, std::string_view line) {
  std::string text{line};
  text += "\r\n";
  const Ptr p = api.buf(static_cast<Word>(text.size()));
  api.mem().write_bytes(p, text);
  (void)co_await api(Fn::SetFilePointer, log_handle, 0, 0, nt::kFileEnd);
  (void)co_await api(Fn::WriteFile, log_handle, p.addr, static_cast<Word>(text.size()), 0, 0);
  api.mem().free(p);
}

}  // namespace dts::apps
