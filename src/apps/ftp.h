// FTP service substrate — the IIS capability the paper mentions but never
// measured ("Although IIS can serve as an HTTP server, an FTP server, and a
// gopher server, only the HTTP functionality was tested"). This module
// provides the protocol engine and the FtpClient workload so the extension
// experiment (bench/ext_ftp_workload) can measure it under the same harness.
//
// Protocol subset: USER/PASS (anonymous), SYST, TYPE, PWD, CWD, PASV, RETR,
// LIST, QUIT — enough for the paper-style "fetch one file and verify it"
// workload. One control connection per session; PASV data connections.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/winapp.h"
#include "ntsim/netsim.h"

namespace dts::apps::ftp {

struct FtpConfig {
  std::uint16_t control_port = 21;
  /// Base for passive-mode data ports (one per transfer, cycled).
  std::uint16_t pasv_port_base = 20000;
  std::string root = "C:\\InetPub\\ftproot";
  sim::Duration command_cost = sim::Duration::millis(400);
  sim::Duration session_idle_timeout = sim::Duration::seconds(60);
};

/// Runs the FTP service loop on the calling simulated thread (spawned inside
/// inetinfo.exe when the IIS config enables FTP). File access goes through
/// the injectable KERNEL32 surface.
sim::Task ftp_service(nt::Ctx c, FtpConfig cfg, nt::net::Network* net);

/// One FTP fetch: connects, logs in anonymously, RETRs `path` in passive
/// mode, and returns the file bytes (nullopt on any protocol/transfer
/// failure). Used by the FtpClient workload and by tests.
sim::CoTask<std::optional<std::string>> ftp_fetch(nt::Ctx c, nt::net::Network* net,
                                                  const std::string& server_machine,
                                                  std::uint16_t port,
                                                  const std::string& path,
                                                  sim::Duration timeout);

}  // namespace dts::apps::ftp
