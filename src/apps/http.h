// Minimal HTTP/1.0 substrate shared by the simulated Apache and IIS servers,
// plus the CGI child-process runner (pipes + CreateProcessA — all on the
// injectable KERNEL32 surface, which is exactly where DTS found CGI bugs).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "apps/winapp.h"
#include "ntsim/netsim.h"

namespace dts::apps::http {

struct Request {
  std::string method;
  std::string target;   // path?query
  std::string version;
  std::map<std::string, std::string> headers;

  std::string path() const {
    const auto q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
  }
  std::string query() const {
    const auto q = target.find('?');
    return q == std::string::npos ? "" : target.substr(q + 1);
  }
};

/// Parses a raw request (request line + headers). Nullopt if malformed.
std::optional<Request> parse_request(const std::string& raw);

/// Formats a full HTTP/1.0 response.
std::string format_response(int status, std::string_view content_type, std::string_view body,
                            std::string_view server_name);

std::string_view reason_phrase(int status);

/// Reads one request (through the terminating blank line) from a socket.
sim::CoTask<std::optional<Request>> read_request(Ctx c, nt::net::Socket& sock,
                                                 sim::Duration timeout);

/// Runs a CGI program as a child process with its stdout redirected into a
/// pipe (CreatePipe + STARTF_USESTDHANDLES + CreateProcessA), collects its
/// output and reaps it. Returns nullopt on any failure (spawn error, CGI
/// crash, timeout). All calls go through the injectable dispatcher.
sim::CoTask<std::optional<std::string>> run_cgi(const Api& api, const std::string& cgi_image,
                                                const Request& req,
                                                sim::Duration timeout);

/// Registers the simulated CGI interpreter program (`cgi.exe`) on a machine.
/// It reads QUERY_STRING/REQUEST_METHOD from its environment, burns
/// interpreter-startup CPU, and writes a ~1 kB HTML document to stdout.
void register_cgi_program(nt::Machine& machine, sim::Duration startup_cost);

/// The exact body the simulated CGI emits for a given query — used by the
/// DTS client to check response correctness.
std::string expected_cgi_body(const std::string& query);

}  // namespace dts::apps::http
