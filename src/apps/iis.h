// Simulated Microsoft IIS 3.0 (HTTP service only, as in the paper).
//
// Single process — every crash is fatal without middleware, the mechanism
// behind "IIS fails roughly twice as often as Apache stand-alone". The init
// path deliberately touches a large slice of KERNEL32 (paper Table 1: 70–76
// activated functions), and error handling follows the era's closed-source
// style: many return values go unchecked, so soft failures corrupt state
// instead of stopping the server.
#pragma once

#include <cstdint>
#include <string>

#include "apps/ftp.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts::apps {

struct IisConfig {
  std::string service_name = "W3SVC";
  std::string image = "inetinfo.exe";
  std::uint16_t port = 80;
  std::string doc_root = "C:\\InetPub\\wwwroot";
  std::string metabase_path = "C:\\WINNT\\system32\\inetsrv\\metabase.bin";
  std::string log_dir = "C:\\WINNT\\system32\\LogFiles";

  /// CPU costs at cpu_scale 1.0.
  sim::Duration init_cost_per_phase = sim::Duration::millis(700);  // 3 phases
  sim::Duration static_request_cost = sim::Duration::millis(6500);
  sim::Duration cgi_startup_cost = sim::Duration::millis(9800);
  sim::Duration cgi_timeout = sim::Duration::seconds(30);

  /// IIS reports Running quickly relative to Apache/SQL, and declares a
  /// short start wait hint — so its start-pending hangs clear fast.
  sim::Duration start_wait_hint = sim::Duration::seconds(10);

  std::size_t index_size = 115 * 1024;

  /// The FTP service (MSFTPSVC) runs inside inetinfo.exe when enabled — the
  /// IIS capability the paper mentions but never measured. Off by default so
  /// the calibrated HTTP workloads are unaffected.
  bool enable_ftp = false;
  ftp::FtpConfig ftp;

  /// The gopher service (GOPHERSVC) — the third protocol the paper names.
  /// Selector in, document out, connection closed. Off by default.
  bool enable_gopher = false;
  std::uint16_t gopher_port = 70;
  std::string gopher_root = "C:\\InetPub\\gophroot";
};

/// Contents of the file the FTP workload downloads (ftproot\download.bin).
std::string ftp_download_content();

/// Installs the IIS program, content and service registration. Returns the
/// static index.html content.
std::string install_iis(nt::Machine& machine, nt::net::Network& network,
                        const IisConfig& cfg = {});

}  // namespace dts::apps
