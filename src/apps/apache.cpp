#include "apps/apache.h"

#include <map>
#include <mutex>

#include "apps/http.h"
#include "apps/winapp.h"
#include "ntsim/scm.h"

namespace dts::apps {

namespace {

/// Stand-in for Win32 listen-socket inheritance: the first worker binds the
/// port and parks the listener here; siblings (and respawned workers, while
/// any holder lives) accept on the same listener concurrently.
struct SharedListenSlot {
  std::weak_ptr<nt::net::Listener> listener;
};

/// Apache1: the management process. Injectable-function footprint is small
/// (~13 functions), matching the paper's Table 1.
sim::Task apache_master(Ctx c, ApacheConfig cfg) {
  const int children = std::max(1, cfg.max_children);
  Api api(c);
  auto& scm = api.machine().scm();

  // --- init (pre-Running): faults that kill us here leave the service in
  // StartPending, with the SCM database locked until the wait hint expires.
  const Ptr si = api.buf(68);
  (void)co_await api(Fn::GetStartupInfoA, si.addr);
  const Ptr module_name = api.buf(260);
  (void)co_await api(Fn::GetModuleFileNameA, 0, module_name.addr, 260);
  (void)co_await api(Fn::SetUnhandledExceptionFilter, 0);

  const Ptr docroot = api.buf(260);
  (void)co_await api(Fn::GetPrivateProfileStringA, api.str("server").addr,
                     api.str("documentroot").addr, api.str(cfg.doc_root).addr,
                     docroot.addr, 260, api.str(cfg.conf_path).addr);
  (void)co_await api(Fn::lstrlenA, docroot.addr);

  co_await api.cpu(cfg.master_init_cost);

  // Cluster-awareness calls when MSCS registered the service with "/cluster"
  // (extra activated functions, paper Table 1 — deliberately fault-tolerant
  // calls: the paper found these all produce normal-success outcomes).
  const std::string cmdline =
      api.mem().read_cstr(Ptr{co_await api(Fn::GetCommandLineA)});
  if (cmdline.find("/cluster") != std::string::npos) {
    (void)co_await api(Fn::IsBadReadPtr, module_name.addr, 4);
    (void)co_await api(Fn::IsBadWritePtr, module_name.addr, 4);
    (void)co_await api(Fn::SetLastError, 0);
    (void)co_await api(Fn::SetErrorMode, 0);
  }

  // The service wrapper reports Running early — before the log and worker
  // are set up (real Apache's behaviour): everything below strikes a service
  // the SCM already considers running, so those deaths drop the service
  // straight to Stopped instead of wedging it in StartPending.
  scm.set_service_status(api.proc().pid(), nt::ServiceState::kRunning);

  // Post-Running setup work (log, shutdown event, worker spawn) runs well
  // after startup — late enough that Watchd1's getServiceInfo() window has
  // closed, so deaths here are visible to every watchd version.
  co_await api.cpu(cfg.post_running_delay);

  const Word h_log = co_await api(Fn::CreateFileA, api.str(cfg.log_dir + "\\error.log").addr,
                                  nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);
  co_await log_line(api, h_log, "[notice] Apache/1.3.3 (WinNT) starting");

  const Word h_shutdown =
      co_await api(Fn::CreateEventA, 0, 1, 0, api.str("ap_shutdown_" + cfg.service_name).addr);
  (void)h_shutdown;  // the shutdown path is exercised by SCM stop controls only

  // --- monitor-and-respawn loop: Apache's built-in fault tolerance. The
  // paper's configuration uses ONE child so faults activate reproducibly;
  // max_children > 1 restores Apache's default pool (see the
  // ablation_multiprocess bench for why the paper pinned it to one).
  const Word h_heap = co_await api(Fn::GetProcessHeap);
  std::vector<Word> child_handles;  // live worker process handles

  auto spawn_one = [&]() -> sim::CoTask<void> {
    const Word cmd_buf = co_await api(Fn::HeapAlloc, h_heap, 0, 256);
    if (cmd_buf == 0) {
      co_await nt::sleep_in_sim(c, sim::Duration::seconds(1));
      co_return;
    }
    std::string worker_cmdline = cfg.worker_image + " -port " + std::to_string(cfg.port);
    if (cmdline.find("/cluster") != std::string::npos) worker_cmdline += " /cluster";
    api.mem().write_cstr(Ptr{cmd_buf}, worker_cmdline);

    const Ptr pi = api.buf(16);
    const Word ok =
        co_await api(Fn::CreateProcessA, 0, cmd_buf, 0, 0, 0, 0, 0, 0, 0, pi.addr);
    (void)co_await api(Fn::HeapFree, h_heap, 0, cmd_buf);
    if (ok == 0) {
      // Spawn failed (e.g. a corrupted argument): log and retry — the next
      // invocation is clean, because DTS injects only one invocation.
      co_await log_line(api, h_log, "[error] could not create child process");
      co_await nt::sleep_in_sim(c, sim::Duration::seconds(1));
      co_return;
    }
    const Word h_child = api.read_u32(pi);
    const Word h_child_thread = api.read_u32(pi.offset(4));
    (void)co_await api(Fn::CloseHandle, h_child_thread);
    child_handles.push_back(h_child);
    co_await log_line(api, h_log, "[notice] child process started");
  };

  for (;;) {
    while (static_cast<int>(child_handles.size()) < children) co_await spawn_one();

    Word dead_index = 0;
    if (child_handles.size() == 1) {
      const Word wait = co_await api(Fn::WaitForSingleObject, child_handles[0],
                                     nt::kInfinite);
      if (wait == nt::kWaitFailed) {
        // Corrupted child handle: Apache cannot see the child die. It assumes
        // the child is gone and respawns — the replacement will fail to bind
        // the port while the original worker lives, and exit.
        co_await log_line(api, h_log, "[error] wait on child failed");
      }
    } else {
      // Pool mode: wait for ANY child to die.
      const Ptr handles = api.buf(static_cast<Word>(child_handles.size()) * 4);
      for (std::size_t i = 0; i < child_handles.size(); ++i) {
        api.mem().write_u32(handles.offset(static_cast<Word>(i) * 4), child_handles[i]);
      }
      const Word wait = co_await api(
          Fn::WaitForMultipleObjects, static_cast<Word>(child_handles.size()),
          handles.addr, 0, nt::kInfinite);
      api.mem().free(handles);
      if (wait == nt::kWaitFailed) {
        co_await log_line(api, h_log, "[error] wait on children failed");
      } else if (wait >= nt::kWaitObject0 &&
                 wait < nt::kWaitObject0 + child_handles.size()) {
        dead_index = wait - nt::kWaitObject0;
      }
    }
    co_await log_line(api, h_log, "[notice] child process exited; respawning");
    if (dead_index < child_handles.size()) {
      (void)co_await api(Fn::CloseHandle, child_handles[dead_index]);
      child_handles.erase(child_handles.begin() +
                          static_cast<std::ptrdiff_t>(dead_index));
    }
    co_await nt::sleep_in_sim(c, cfg.respawn_delay);
  }
}

/// Apache2: the worker process that actually serves requests (~22 injectable
/// functions, paper Table 1).
sim::Task apache_worker(Ctx c, ApacheConfig cfg, nt::net::Network* network,
                        std::shared_ptr<SharedListenSlot> listen_slot) {
  Api api(c);

  // --- init --------------------------------------------------------------
  const Ptr si = api.buf(68);
  (void)co_await api(Fn::GetStartupInfoA, si.addr);
  const Ptr module_name = api.buf(260);
  (void)co_await api(Fn::GetModuleFileNameA, 0, module_name.addr, 260);

  const Ptr docroot_buf = api.buf(260);
  (void)co_await api(Fn::GetPrivateProfileStringA, api.str("server").addr,
                     api.str("documentroot").addr, api.str("C:\\").addr, docroot_buf.addr,
                     260, api.str(cfg.conf_path).addr);
  const std::string docroot = api.read_str(docroot_buf);
  const Word port = co_await api(Fn::GetPrivateProfileIntA, api.str("server").addr,
                                 api.str("port").addr, cfg.port,
                                 api.str(cfg.conf_path).addr);

  const Word h_heap = co_await api(Fn::HeapCreate, 0, 65536, 0);
  const Word scratch = co_await api(Fn::HeapAlloc, h_heap, 0, 4096);
  (void)scratch;  // request scratch arena; freed per request below

  const Word tls_slot = co_await api(Fn::TlsAlloc);
  (void)co_await api(Fn::TlsSetValue, tls_slot, 1);

  const Ptr log_cs = api.buf(24);
  (void)co_await api(Fn::InitializeCriticalSection, log_cs.addr);

  const Word h_access_log =
      co_await api(Fn::CreateFileA, api.str(cfg.log_dir + "\\access.log").addr,
                   nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);

  co_await api.cpu(cfg.worker_init_cost);

  // Cluster-awareness (inherited from the master's "/cluster" switch);
  // fault-tolerant calls only, as in the master.
  const std::string worker_cmdline =
      api.mem().read_cstr(Ptr{co_await api(Fn::GetCommandLineA)});
  if (worker_cmdline.find("/cluster") != std::string::npos) {
    (void)co_await api(Fn::lstrcmpiA, docroot_buf.addr, docroot_buf.addr);
    (void)co_await api(Fn::SetLastError, 0);
  }

  // --- bind the port (or join the inherited listen socket, pool mode).
  auto listener = listen_slot->listener.lock();
  if (listener == nullptr) {
    listener = network->listen(api.machine().name(), static_cast<std::uint16_t>(port));
    if (listener == nullptr) {
      // Port owned by an unrelated process (e.g. a flapping respawn while
      // the original single worker lives): exit, the master retries.
      (void)co_await api(Fn::ExitProcess, 1);
    }
    listen_slot->listener = listener;
  }

  // --- accept/serve loop ---------------------------------------------------
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    auto req = co_await http::read_request(c, *sock, sim::Duration::seconds(30));
    if (!req) continue;  // drop malformed/timed-out connections

    std::string body;
    int status = 200;
    std::string content_type = "text/html";

    if (req->path().rfind("/cgi-bin/", 0) == 0) {
      auto out = co_await http::run_cgi(api, "cgi.exe", *req, cfg.cgi_timeout);
      if (out) {
        body = std::move(*out);
      } else {
        status = 500;
        body = "<html><body><h1>500 Internal Server Error</h1></body></html>";
      }
    } else {
      // Static file: docroot + path, forward slashes translated.
      std::string rel = req->path();
      for (char& ch : rel) {
        if (ch == '/') ch = '\\';
      }
      if (rel == "\\") rel = "\\index.html";
      const std::string full = docroot + rel;

      const Word attrs = co_await api(Fn::GetFileAttributesA, api.str(full).addr);
      if (attrs == nt::kInvalidFileAttributes) {
        status = 404;
        body = "<html><body><h1>404 Not Found</h1></body></html>";
      } else {
        co_await api.cpu(cfg.static_request_cost);
        auto content = co_await read_file_syscall(api, full);
        if (content) {
          body = std::move(*content);
        } else {
          status = 403;
          body = "<html><body><h1>403 Forbidden</h1></body></html>";
        }
      }
    }

    sock->send(http::format_response(status, content_type, body, "Apache/1.3.3 (WinNT)"));

    // Access log under the log lock.
    (void)co_await api(Fn::EnterCriticalSection, log_cs.addr);
    co_await log_line(api, h_access_log,
                      "GET " + req->target + " " + std::to_string(status));
    (void)co_await api(Fn::LeaveCriticalSection, log_cs.addr);
  }
}

}  // namespace

std::string apache_index_content(std::size_t size) {
  // Deterministic, and memoized: campaigns regenerate it thousands of times.
  // Mutex-guarded — parallel campaign workers install Apache concurrently.
  static std::mutex cache_mu;
  static std::map<std::size_t, std::string> cache;
  std::lock_guard<std::mutex> lock(cache_mu);
  auto it = cache.find(size);
  if (it != cache.end()) return it->second;

  std::string body = "<html><head><title>Apache test page</title></head><body>\n";
  sim::Rng rng{sim::Rng::hash("apache-index")};
  while (body.size() + 40 < size) {
    char line[64];
    std::snprintf(line, sizeof line, "<p>block %016llx</p>\n",
                  static_cast<unsigned long long>(rng.next()));
    body += line;
  }
  body += "</body></html>\n";
  body.resize(size, ' ');
  cache.emplace(size, body);
  return body;
}

std::string install_apache(nt::Machine& machine, nt::net::Network& network,
                           const ApacheConfig& cfg) {
  const std::string index = apache_index_content(cfg.index_size);
  machine.fs().put_file(cfg.doc_root + "\\index.html", index);
  machine.fs().mkdirs(cfg.log_dir);
  machine.fs().put_file(cfg.conf_path, "[server]\ndocumentroot=" + cfg.doc_root +
                                           "\nport=" + std::to_string(cfg.port) + "\n");

  http::register_cgi_program(machine, cfg.cgi_startup_cost);
  machine.register_program(cfg.master_image,
                           [cfg](Ctx c) { return apache_master(c, cfg); });
  nt::net::Network* net = &network;
  auto listen_slot = std::make_shared<SharedListenSlot>();
  machine.register_program(cfg.worker_image, [cfg, net, listen_slot](Ctx c) {
    return apache_worker(c, cfg, net, listen_slot);
  });

  machine.scm().register_service(nt::ServiceConfig{
      .name = cfg.service_name,
      .image = cfg.master_image,
      .command_line = cfg.master_image,
      .start_wait_hint = cfg.start_wait_hint,
  });
  return index;
}

}  // namespace dts::apps
