// Miniature SQL engine backing the simulated SQL Server 7.
//
// Supports the statement classes the paper's SqlClient workload needs —
// CREATE TABLE, INSERT, and single-table SELECT with WHERE / ORDER BY — plus
// enough surface (DROP, DELETE, UPDATE) to be a usable substrate. Pure
// in-memory compute; the server process around it does the (injectable)
// file I/O.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace dts::apps::sql {

// ---------------------------------------------------------------- values

using Value = std::variant<std::int64_t, std::string>;

std::string to_string(const Value& v);

enum class ColumnType { kInt, kText };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

// ---------------------------------------------------------------- storage

class Table {
 public:
  Table(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  /// Index of a column by (case-insensitive) name, or -1.
  int column_index(std::string_view name) const;

  /// Appends a row; returns false on arity or type mismatch.
  bool insert(std::vector<Value> row);

  void remove_rows(const std::vector<std::size_t>& indices);
  std::vector<std::vector<Value>>& mutable_rows() { return rows_; }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::vector<Value>> rows_;
};

class Database {
 public:
  Table* find(std::string_view name);
  const Table* find(std::string_view name) const;
  bool create(std::string name, std::vector<Column> columns);
  bool drop(std::string_view name);
  std::vector<std::string> table_names() const;

  /// Serializes / restores the whole database as a text image (what the
  /// simulated .mdf file holds).
  std::string serialize() const;
  static std::optional<Database> deserialize(const std::string& image);

 private:
  std::map<std::string, Table> tables_;  // keyed by lower-cased name
};

// ---------------------------------------------------------------- queries

struct QueryResult {
  bool ok = false;
  std::string error;
  std::vector<std::string> column_names;          // for SELECT
  std::vector<std::vector<Value>> rows;           // for SELECT
  std::size_t affected = 0;                       // for INSERT/DELETE/UPDATE

  /// Tabular text form (the wire format the simulated TDS protocol carries).
  std::string to_text() const;
};

/// Parses and executes one SQL statement against the database.
QueryResult execute(Database& db, const std::string& statement);

// Exposed for unit tests: the token stream.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd } kind = Kind::kEnd;
  std::string text;
};
std::optional<std::vector<Token>> lex(const std::string& statement, std::string* error);

}  // namespace dts::apps::sql
