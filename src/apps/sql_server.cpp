#include "apps/sql_server.h"

#include <deque>
#include <memory>

#include "apps/winapp.h"
#include "ntsim/scm.h"

namespace dts::apps {

namespace {

sql::Database seed_database(int rows) {
  sql::Database db;
  db.create("accounts",
            {{"id", sql::ColumnType::kInt},
             {"name", sql::ColumnType::kText},
             {"balance", sql::ColumnType::kInt}});
  sql::Table* t = db.find("accounts");
  sim::Rng rng{sim::Rng::hash("sql-seed")};
  for (int i = 0; i < rows; ++i) {
    t->insert({std::int64_t{i}, "account-" + std::to_string(i),
               static_cast<std::int64_t>(rng.uniform(0, 100000))});
  }
  return db;
}

struct SqlState {
  std::deque<std::shared_ptr<nt::net::Socket>> queue;
  Word h_queue_event = 0;  // auto-reset event: "work available"
  Word queue_cs_addr = 0;
  std::shared_ptr<sql::Database> db;
};

/// Named-pipe listener: SQL Server 7's native local transport
/// (\\.\pipe\sql\query). Serves one query per connect, like the TCP path.
/// The DTS workload drives the TCP port, so in campaign runs this thread's
/// ConnectNamedPipe simply blocks — but its setup calls are on the injectable
/// surface, and local tools (see tests) can query through it.
sim::Task sql_pipe_listener(Ctx c, SqlServerConfig cfg, std::shared_ptr<SqlState> state,
                            Word h_log) {
  Api api(c);
  const Word h_pipe = co_await api(Fn::CreateNamedPipeA,
                                   api.str("\\\\.\\pipe\\sql\\query").addr,
                                   3 /*PIPE_ACCESS_DUPLEX*/, 0, 255, 4096, 4096, 0, 0);
  if (h_pipe == nt::kInvalidHandleValue) {
    co_await log_line(api, h_log, "named pipe setup failed; local clients disabled");
    co_return;
  }
  const Ptr buffer = api.buf(4096);
  const Ptr n_out = api.buf(4);
  for (;;) {
    const Word connected = co_await api(Fn::ConnectNamedPipe, h_pipe, 0);
    if (connected == 0 &&
        api.last_error() != nt::to_dword(nt::Win32Error::kPipeConnected)) {
      co_await log_line(api, h_log, "named pipe connect failed; local clients disabled");
      co_return;
    }
    std::string request;
    for (;;) {
      if (co_await api(Fn::ReadFile, h_pipe, buffer.addr, 4096, n_out.addr, 0) == 0) break;
      const Word n = api.read_u32(n_out);
      if (n == 0) break;
      request += api.mem().read_bytes(buffer, n);
      if (request.find('\n') != std::string::npos) break;
    }
    while (!request.empty() && (request.back() == '\n' || request.back() == '\r')) {
      request.pop_back();
    }
    co_await api.cpu(cfg.query_cost);
    const std::string reply = sql::execute(*state->db, request).to_text();
    const Ptr out = api.buf(static_cast<Word>(reply.size()));
    api.mem().write_bytes(out, reply);
    (void)co_await api(Fn::WriteFile, h_pipe, out.addr, static_cast<Word>(reply.size()),
                       0, 0);
    api.mem().free(out);
    co_await nt::sleep_in_sim(c, sim::Duration::millis(100));
    (void)co_await api(Fn::DisconnectNamedPipe, h_pipe);
  }
}

/// Worker thread: executes queued queries against the engine.
sim::Task sql_worker_thread(Ctx c, SqlServerConfig cfg, std::shared_ptr<SqlState> state,
                            Word h_log) {
  Api api(c);
  for (;;) {
    const Word w = co_await api(Fn::WaitForSingleObject, state->h_queue_event, nt::kInfinite);
    if (w != nt::kWaitObject0) {
      // Corrupted event handle: the executor never wakes again — queries
      // pile up, the service hangs.
      (void)co_await api(Fn::Sleep, nt::kInfinite);
    }
    for (;;) {
      (void)co_await api(Fn::EnterCriticalSection, state->queue_cs_addr);
      std::shared_ptr<nt::net::Socket> sock;
      if (!state->queue.empty()) {
        sock = std::move(state->queue.front());
        state->queue.pop_front();
      }
      (void)co_await api(Fn::LeaveCriticalSection, state->queue_cs_addr);
      if (sock == nullptr) break;

      auto line = co_await sock->recv_until(c, "\n", 16384, sim::Duration::seconds(30));
      if (!line) continue;
      while (!line->empty() && (line->back() == '\n' || line->back() == '\r')) {
        line->pop_back();
      }
      co_await api.cpu(cfg.query_cost);
      const sql::QueryResult result = sql::execute(*state->db, *line);

      // Query log (WriteFile + FlushFileBuffers, both injectable).
      co_await log_line(api, h_log, "query: " + *line + (result.ok ? " ok" : " error"));
      (void)co_await api(Fn::FlushFileBuffers, h_log);

      sock->send(result.to_text());
      // Connection-per-query: give the client a moment to drain, then close.
      co_await nt::sleep_in_sim(c, sim::Duration::millis(200));
    }
  }
}

sim::Task sql_main(Ctx c, SqlServerConfig cfg, nt::net::Network* network) {
  Api api(c);

  // --- basic process init ---------------------------------------------------
  const Ptr si = api.buf(68);
  (void)co_await api(Fn::GetStartupInfoA, si.addr);
  const std::string cmdline =
      api.mem().read_cstr(Ptr{co_await api(Fn::GetCommandLineA)});
  (void)co_await api(Fn::GetVersion);
  const Ptr ver = api.buf(160);
  api.mem().write_u32(ver, 148);
  (void)co_await api(Fn::GetVersionExA, ver.addr);
  const Ptr sysinfo = api.buf(36);
  (void)co_await api(Fn::GetSystemInfo, sysinfo.addr);
  const Ptr mem_status = api.buf(32);
  (void)co_await api(Fn::GlobalMemoryStatus, mem_status.addr);
  const Ptr namebuf = api.buf(300);
  const Ptr namelen = api.buf(4);
  api.mem().write_u32(namelen, 64);
  (void)co_await api(Fn::GetComputerNameA, namebuf.addr, namelen.addr);
  (void)co_await api(Fn::GetModuleHandleA, api.str("KERNEL32.DLL").addr);
  (void)co_await api(Fn::GetModuleFileNameA, 0, namebuf.addr, 300);
  (void)co_await api(Fn::SetErrorMode, 1);
  (void)co_await api(Fn::SetUnhandledExceptionFilter, 0);
  (void)co_await api(Fn::SetConsoleCtrlHandler, 0, 1);
  (void)co_await api(Fn::SetPriorityClass, nt::kCurrentProcessPseudoHandle.value, 0x80);
  (void)co_await api(Fn::GetStdHandle, nt::kStdErrorHandle);
  (void)co_await api(Fn::GetACP);
  const Ptr cpinfo = api.buf(20);
  (void)co_await api(Fn::GetCPInfo, 1252, cpinfo.addr);
  if (cmdline.find("/watchd") == std::string::npos) {
    (void)co_await api(Fn::GetLocaleInfoA, 1033, 2, namebuf.addr, 64);
  }
  (void)co_await api(Fn::GetSystemDefaultLangID);
  const Ptr ft = api.buf(8);
  (void)co_await api(Fn::GetSystemTimeAsFileTime, ft.addr);
  (void)co_await api(Fn::QueryPerformanceFrequency, ft.addr);
  (void)co_await api(Fn::QueryPerformanceCounter, ft.addr);
  (void)co_await api(Fn::GetTickCount);

  // Memory arenas: SQL Server grabs big chunks up front.
  const Word h_heap = co_await api(Fn::HeapCreate, 0, 1 << 20, 0);
  const Word block = co_await api(Fn::HeapAlloc, h_heap, 8, 65536);
  (void)co_await api(Fn::HeapSize, h_heap, 0, block);
  (void)co_await api(Fn::GetProcessHeap);
  const Word buf_pool = co_await api(Fn::VirtualAlloc, 0, 1 << 20, 0x1000, 4);
  (void)buf_pool;
  const Word gmem = co_await api(Fn::GlobalAlloc, 0, 8192);
  (void)co_await api(Fn::GlobalLock, gmem);
  (void)co_await api(Fn::GlobalUnlock, gmem);
  const Word tls = co_await api(Fn::TlsAlloc);
  (void)co_await api(Fn::TlsSetValue, tls, 1);
  (void)co_await api(Fn::TlsGetValue, tls);

  // Environment & libraries.
  const Word env_block = co_await api(Fn::GetEnvironmentStrings);
  (void)co_await api(Fn::FreeEnvironmentStringsA, env_block);
  (void)co_await api(Fn::GetEnvironmentVariableA, api.str("TEMP").addr, namebuf.addr, 300);
  (void)co_await api(Fn::SetEnvironmentVariableA, api.str("MSSQL_STARTED").addr,
                     api.str("1").addr);
  const Word odbc = co_await api(Fn::LoadLibraryA, api.str("ODBC32.DLL").addr);
  (void)co_await api(Fn::GetProcAddress, odbc, api.str("SQLAllocHandle").addr);
  (void)co_await api(Fn::LoadLibraryA, api.str("WS2_32.DLL").addr);

  co_await api.cpu(cfg.init_cost);

  // SQL Server reports Running before database recovery finishes (clients
  // simply cannot connect yet). Faults from here on therefore drop the
  // service straight to Stopped when they kill the process — promptly
  // restartable — while faults above leave it wedged in StartPending for the
  // full (long) wait hint.
  api.machine().scm().set_service_status(api.proc().pid(), nt::ServiceState::kRunning);

  // Paths & settings.
  (void)co_await api(Fn::GetCurrentDirectoryA, 300, namebuf.addr);
  (void)co_await api(Fn::GetFullPathNameA, api.str(cfg.data_path).addr, 300, namebuf.addr, 0);
  (void)co_await api(Fn::GetDriveTypeA, api.str("C:\\").addr);
  const Ptr volbuf = api.buf(64);
  const Ptr volinfo = api.buf(16);
  (void)co_await api(Fn::GetVolumeInformationA, api.str("C:\\").addr, volbuf.addr, 32,
                     volinfo.addr, volinfo.addr + 4, volinfo.addr + 8, volbuf.addr + 32,
                     16);
  const Ptr expanded = api.buf(300);
  (void)co_await api(Fn::ExpandEnvironmentStringsA,
                     api.str("%SYSTEMROOT%\\mssql.ini").addr, expanded.addr, 300);
  const Ptr disk = api.buf(16);
  (void)co_await api(Fn::GetDiskFreeSpaceA, api.str("C:\\").addr, disk.addr, disk.addr + 4,
                     disk.addr + 8, disk.addr + 12);
  const Ptr setting = api.buf(128);
  (void)co_await api(Fn::GetPrivateProfileStringA, api.str("mssql").addr,
                     api.str("datadir").addr, api.str("C:\\MSSQL7\\data").addr, setting.addr,
                     128, api.str("C:\\WINNT\\mssql.ini").addr);
  (void)co_await api(Fn::GetPrivateProfileIntA, api.str("mssql").addr, api.str("port").addr,
                     cfg.port, api.str("C:\\WINNT\\mssql.ini").addr);
  (void)co_await api(Fn::lstrlenA, setting.addr);
  (void)co_await api(Fn::lstrcpyA, namebuf.addr, setting.addr);
  (void)co_await api(Fn::lstrcmpiA, setting.addr, api.str("c:\\mssql7\\data").addr);
  const Ptr wide = api.buf(256);
  (void)co_await api(Fn::MultiByteToWideChar, 1252, 0, setting.addr, 0xFFFFFFFF, wide.addr,
                     128);
  (void)co_await api(Fn::WideCharToMultiByte, 1252, 0, wide.addr, 0xFFFFFFFF, setting.addr,
                     128, 0, 0);
  (void)co_await api(Fn::CompareStringA, 1033, 1, setting.addr, 0xFFFFFFFF, setting.addr,
                     0xFFFFFFFF);

  // --- error log -------------------------------------------------------------
  const Word h_log = co_await api(Fn::CreateFileA, api.str(cfg.log_path).addr,
                                  nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);
  co_await log_line(api, h_log, "SQL Server starting - recovering databases");

  // --- database recovery: read the .mdf through ReadFileEx -------------------
  auto state = std::make_shared<SqlState>();
  std::string image;
  {
    const Word h_db = co_await api(Fn::CreateFileA, api.str(cfg.data_path).addr,
                                   nt::kGenericRead, 1, 0, nt::kOpenExisting, 0, 0);
    if (h_db == nt::kInvalidHandleValue) {
      co_await log_line(api, h_log, "FATAL: cannot open master database");
      (void)co_await api(Fn::ExitProcess, 1);
    }
    const Ptr size_high = api.buf(4);
    const Word size = co_await api(Fn::GetFileSize, h_db, size_high.addr);
    // Recovery compares the data file's timestamps against the checkpoint
    // (LSN-style staleness check).
    const Ptr ft_write = api.buf(8);
    const Ptr ft_check = api.buf(8);
    (void)co_await api(Fn::GetFileTime, h_db, 0, 0, ft_write.addr);
    const Ptr st = api.buf(16);
    (void)co_await api(Fn::GetSystemTime, st.addr);
    (void)co_await api(Fn::SystemTimeToFileTime, st.addr, ft_check.addr);
    (void)co_await api(Fn::CompareFileTime, ft_write.addr, ft_check.addr);
    const Word completion = api.proc().register_routine(
        [](Ctx, Word) -> sim::Task { co_return; });  // no-op APC routine
    const Ptr chunk = api.buf(4096);
    Word offset = 0;
    while (offset < size) {
      const Word want = std::min<Word>(4096, size - offset);
      (void)co_await api(Fn::SetFilePointer, h_db, offset, 0, nt::kFileBegin);
      // ReadFileEx: the paper's nondeterministic fault lived on this call's
      // nNumberOfBytesToRead parameter.
      if (co_await api(Fn::ReadFileEx, h_db, chunk.addr, want, 0, completion) == 0) break;
      // How much actually arrived? Zero requested bytes reads nothing and
      // recovery sees a truncated image.
      if (want == 0) break;
      image += api.mem().read_bytes(chunk, want);
      offset += want;
    }
    (void)co_await api(Fn::CloseHandle, h_db);
  }
  co_await api.cpu(cfg.recovery_cost);

  auto restored = sql::Database::deserialize(image);
  if (restored) {
    state->db = std::make_shared<sql::Database>(std::move(*restored));
    co_await log_line(api, h_log, "Recovery complete");
  } else {
    // Truncated/corrupt image: SQL Server comes up with a damaged catalog
    // and answers every query with an error — wrong responses, not silence.
    state->db = std::make_shared<sql::Database>();
    co_await log_line(api, h_log, "WARNING: recovery found a damaged database");
  }

  // --- executor infrastructure ----------------------------------------------
  state->h_queue_event = co_await api(Fn::CreateEventA, 0, 0, 0, 0);  // auto-reset
  const Ptr cs = api.buf(24);
  (void)co_await api(Fn::InitializeCriticalSection, cs.addr);
  state->queue_cs_addr = cs.addr;
  // Lock-manager mutex: created but not waited on during startup, so the
  // executor's queue wait is this process's first WaitForSingleObject.
  const Word h_lock_mutex = co_await api(Fn::CreateMutexA, 0, 0, api.str("SQL_LCK").addr);
  (void)co_await api(Fn::ReleaseMutex, h_lock_mutex);
  const Ptr counters = api.buf(8);
  (void)co_await api(Fn::InterlockedIncrement, counters.addr);
  (void)co_await api(Fn::InterlockedExchange, counters.addr + 4, 1);

  const Word routine = api.proc().register_routine(
      [cfg, state, h_log](Ctx tc, Word) { return sql_worker_thread(tc, cfg, state, h_log); });
  (void)co_await api(Fn::CreateThread, 0, 0, routine, 0, 0, 0);

  // Named-pipe transport (SQL Server 7's default local protocol).
  api.proc().spawn_thread([cfg, state, h_log](Ctx tc) {
    return sql_pipe_listener(tc, cfg, state, h_log);
  });

  // Optional cluster-awareness calls (MSCS registers the service with
  // "/cluster"): a handful of extra activated functions, paper Table 1.
  if (cmdline.find("/cluster") != std::string::npos) {
    // Fault-tolerant calls only (paper: middleware-induced extra functions
    // all produce normal-success outcomes).
    (void)co_await api(Fn::SetLastError, 0);
    (void)co_await api(Fn::IsBadReadPtr, counters.addr, 4);
    (void)co_await api(Fn::Beep, 0, 0);
  }

  co_await log_line(api, h_log, "SQL Server is ready for connections");

  auto listener = network->listen(api.machine().name(), cfg.port);
  if (listener == nullptr) {
    (void)co_await api(Fn::ExitProcess, 1);
  }

  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    (void)co_await api(Fn::EnterCriticalSection, state->queue_cs_addr);
    state->queue.push_back(std::move(sock));
    (void)co_await api(Fn::LeaveCriticalSection, state->queue_cs_addr);
    (void)co_await api(Fn::SetEvent, state->h_queue_event);
  }
}

}  // namespace

std::string sql_client_query() { return "SELECT * FROM accounts WHERE id = 7"; }

std::string expected_sql_reply(const SqlServerConfig& cfg) {
  sql::Database db = seed_database(cfg.seed_rows);
  return sql::execute(db, sql_client_query()).to_text();
}

std::string install_sql_server(nt::Machine& machine, nt::net::Network& network,
                               const SqlServerConfig& cfg) {
  machine.fs().put_file(cfg.data_path, seed_database(cfg.seed_rows).serialize());
  machine.fs().mkdirs("C:\\MSSQL7\\log");
  machine.fs().put_file("C:\\WINNT\\mssql.ini",
                        "[mssql]\ndatadir=C:\\MSSQL7\\data\nport=" +
                            std::to_string(cfg.port) + "\n");

  nt::net::Network* net = &network;
  machine.register_program(cfg.image, [cfg, net](Ctx c) { return sql_main(c, cfg, net); });
  machine.scm().register_service(nt::ServiceConfig{
      .name = cfg.service_name,
      .image = cfg.image,
      .command_line = cfg.image,
      .start_wait_hint = cfg.start_wait_hint,
  });
  return expected_sql_reply(cfg);
}

}  // namespace dts::apps
