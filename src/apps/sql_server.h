// Simulated Microsoft SQL Server 7: single process, long recovery-heavy
// startup (reading the .mdf through ReadFileEx — the syscall whose corrupted
// nNumberOfBytesToRead produced the paper's one nondeterministic fault),
// and a line-oriented query protocol served connection-per-query.
#pragma once

#include <cstdint>
#include <string>

#include "apps/sql_engine.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts::apps {

struct SqlServerConfig {
  std::string service_name = "MSSQLServer";
  std::string image = "sqlservr.exe";
  std::uint16_t port = 1433;
  std::string data_path = "C:\\MSSQL7\\data\\master.mdf";
  std::string log_path = "C:\\MSSQL7\\log\\errorlog";

  /// CPU costs at cpu_scale 1.0. Recovery dominates startup.
  sim::Duration init_cost = sim::Duration::millis(1500);
  sim::Duration recovery_cost = sim::Duration::millis(4500);
  sim::Duration query_cost = sim::Duration::millis(3400);

  /// SQL Server declares a long start wait hint (database recovery can be
  /// slow), so its start-pending hangs are the slowest to clear.
  sim::Duration start_wait_hint = sim::Duration::seconds(40);

  /// Rows seeded into the benchmark table.
  int seed_rows = 100;
};

/// Installs the SQL Server program, its database file and service
/// registration. Returns the expected response text for the paper's
/// SqlClient query (`SELECT * FROM accounts WHERE id = 7`).
std::string install_sql_server(nt::Machine& machine, nt::net::Network& network,
                               const SqlServerConfig& cfg = {});

/// The query the paper's SqlClient sends, and its expected reply given the
/// seeded database.
std::string sql_client_query();
std::string expected_sql_reply(const SqlServerConfig& cfg = {});

}  // namespace dts::apps
