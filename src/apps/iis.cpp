#include "apps/iis.h"

#include <deque>
#include <map>
#include <memory>

#include "apps/apache.h"  // apache_index_content (shared static-page generator)
#include "apps/http.h"
#include "apps/winapp.h"
#include "ntsim/scm.h"

namespace dts::apps {

namespace {

/// Shared state between the IIS accept thread and its worker thread. Lives in
/// the program closure (owned by the Thread object, so it outlives frames).
struct IisState {
  std::deque<std::shared_ptr<nt::net::Socket>> queue;
  Word h_queue_sem = 0;
  Word queue_cs_addr = 0;
  std::string doc_root;
  // Lazily-initialized request machinery: much of IIS's KERNEL32 footprint
  // first executes while serving a request, which is why the paper saw such
  // high retry-with-success rates for IIS — a corrupted first invocation
  // spoils one request and the retry runs clean.
  Word h_log = 0;          // request log, opened at first request
  bool cache_ready = false;
  Word h_cache_map = 0;
  Word port = 80;
  /// The static-content cache: unlike Apache (which reads from disk every
  /// time), IIS caches the first body it computes for a path. A body
  /// corrupted during the first fill is served to every later request — a
  /// persistent wrong-response loop that no restart-based middleware
  /// observes, one of the Apache-vs-IIS reliability gaps the paper measured.
  std::map<std::string, std::string> content_cache;
};

/// Init phase A: process environment and system discovery.
/// Under watchd the service runs wrapped without a console, so the console /
/// locale diagnostics are skipped — the reason watchd configurations
/// activate slightly fewer functions (paper Table 1: IIS 76 -> 70).
sim::CoTask<void> iis_init_system(const Api& api, bool under_watchd) {
  const Ptr si = api.buf(68);
  (void)co_await api(Fn::GetStartupInfoA, si.addr);
  (void)co_await api(Fn::GetVersion);
  const Ptr ver = api.buf(160);
  api.mem().write_u32(ver, 148);
  (void)co_await api(Fn::GetVersionExA, ver.addr);
  const Ptr sysinfo = api.buf(36);
  (void)co_await api(Fn::GetSystemInfo, sysinfo.addr);
  const Ptr namebuf = api.buf(64);
  const Ptr namelen = api.buf(4);
  api.mem().write_u32(namelen, 64);
  (void)co_await api(Fn::GetComputerNameA, namebuf.addr, namelen.addr);
  (void)co_await api(Fn::GetSystemDirectoryA, namebuf.addr, 64);
  (void)co_await api(Fn::GetWindowsDirectoryA, namebuf.addr, 64);
  (void)co_await api(Fn::GetModuleHandleA, api.str("KERNEL32.DLL").addr);
  const Ptr mod = api.buf(260);
  (void)co_await api(Fn::GetModuleFileNameA, 0, mod.addr, 260);
  (void)co_await api(Fn::SetErrorMode, 1);
  (void)co_await api(Fn::SetUnhandledExceptionFilter, 0);
  if (!under_watchd) {
    (void)co_await api(Fn::SetConsoleCtrlHandler, 0, 1);
    (void)co_await api(Fn::GetStdHandle, nt::kStdOutputHandle);
    const Ptr cpinfo = api.buf(20);
    (void)co_await api(Fn::GetCPInfo, 1252, cpinfo.addr);
    (void)co_await api(Fn::GetLocaleInfoA, 1033, 2, namebuf.addr, 64);
  }
  (void)co_await api(Fn::GetACP);
  const Ptr ft = api.buf(8);
  (void)co_await api(Fn::GetSystemTimeAsFileTime, ft.addr);
  (void)co_await api(Fn::QueryPerformanceFrequency, ft.addr);
  (void)co_await api(Fn::GetTickCount);
  if (!under_watchd) {
    const Ptr mem_status = api.buf(32);
    (void)co_await api(Fn::GlobalMemoryStatus, mem_status.addr);
  }
  (void)co_await api(Fn::GetSystemDefaultLangID);
  // (GetSystemTime/GetLocalTime/QueryPerformanceCounter are first called by
  // the request-logging path, under load.)

  // Environment handling.
  const Word env_block = co_await api(Fn::GetEnvironmentStrings);
  (void)co_await api(Fn::FreeEnvironmentStringsA, env_block);
  (void)co_await api(Fn::GetEnvironmentVariableA, api.str("SYSTEMROOT").addr, namebuf.addr,
                     64);
  (void)co_await api(Fn::SetEnvironmentVariableA, api.str("IIS_STARTED").addr,
                     api.str("1").addr);

  // DLL loading.
  const Word wsock = co_await api(Fn::LoadLibraryA, api.str("WSOCK32.DLL").addr);
  (void)co_await api(Fn::GetProcAddress, wsock, api.str("WSAStartup").addr);
  (void)co_await api(Fn::LoadLibraryA, api.str("ADVAPI32.DLL").addr);
  (void)co_await api(Fn::LoadLibraryA, api.str("RPCRT4.DLL").addr);
}

/// Init phase B: memory arenas, settings, content discovery.
sim::CoTask<void> iis_init_config(const Api& api, const IisConfig& cfg, IisState* state) {
  // Heaps and arenas. IIS does not check these results (era style).
  const Word h_heap = co_await api(Fn::HeapCreate, 0, 1 << 20, 0);
  const Word block = co_await api(Fn::HeapAlloc, h_heap, 8, 8192);
  const Word grown = co_await api(Fn::HeapReAlloc, h_heap, 8, block, 16384);
  (void)co_await api(Fn::HeapSize, h_heap, 0, grown);
  (void)co_await api(Fn::HeapFree, h_heap, 0, grown);
  (void)co_await api(Fn::GetProcessHeap);
  const Word varena = co_await api(Fn::VirtualAlloc, 0, 1 << 16, 0x1000, 4);
  (void)co_await api(Fn::VirtualFree, varena, 0, 0x8000);
  const Word gmem = co_await api(Fn::GlobalAlloc, 0, 4096);
  (void)co_await api(Fn::GlobalLock, gmem);
  (void)co_await api(Fn::GlobalUnlock, gmem);
  (void)co_await api(Fn::GlobalFree, gmem);
  const Word lmem = co_await api(Fn::LocalAlloc, 0, 1024);
  (void)co_await api(Fn::LocalFree, lmem);
  const Word tls = co_await api(Fn::TlsAlloc);
  (void)co_await api(Fn::TlsSetValue, tls, 0x1000);
  (void)co_await api(Fn::TlsGetValue, tls);

  // Content directory scan (metabase content itself is opened lazily by the
  // request path — IIS's file machinery mostly first runs under load).
  const Ptr find_data = api.buf(320);
  const Word h_find =
      co_await api(Fn::FindFirstFileA, api.str(state->doc_root + "\\*").addr, find_data.addr);
  if (h_find != nt::kInvalidHandleValue) {
    while (co_await api(Fn::FindNextFileA, h_find, find_data.addr) != 0) {
    }
    (void)co_await api(Fn::FindClose, h_find);
  }

  // Path plumbing.
  const Ptr pathbuf = api.buf(300);
  (void)co_await api(Fn::GetFullPathNameA, api.str(state->doc_root).addr, 300, pathbuf.addr,
                     0);
  (void)co_await api(Fn::GetCurrentDirectoryA, 300, pathbuf.addr);
  (void)co_await api(Fn::SetCurrentDirectoryA, api.str("C:\\WINNT\\system32").addr);
  const Ptr disk = api.buf(16);
  (void)co_await api(Fn::GetDiskFreeSpaceA, api.str("C:\\").addr, disk.addr,
                     disk.addr + 4, disk.addr + 8, disk.addr + 12);
  (void)co_await api(Fn::GetTempPathA, 300, pathbuf.addr);
  (void)co_await api(Fn::SearchPathA, 0, api.str("inetsrv.ini").addr, 0, 300, pathbuf.addr,
                     0);
  (void)co_await api(Fn::GetDriveTypeA, api.str("C:\\").addr);
  const Ptr expanded = api.buf(300);
  (void)co_await api(Fn::ExpandEnvironmentStringsA,
                     api.str("%SYSTEMROOT%\\system32\\inetsrv").addr, expanded.addr,
                     300);

  // Settings: the virtual-root (document root) comes from the settings
  // store. A corrupted read here poisons every later static request — the
  // wrong-response failure loops DTS observed.
  const Ptr val = api.buf(300);
  (void)co_await api(Fn::GetPrivateProfileStringA, api.str("w3svc").addr,
                     api.str("vroot").addr, api.str(state->doc_root).addr, val.addr, 300,
                     api.str("C:\\WINNT\\inetsrv.ini").addr);
  state->doc_root = api.read_str(val);
  // The listen port comes from settings with the built-in default as the
  // fallback (the INI does not carry one). A corrupted default leaves IIS
  // listening on the wrong port — alive, Running, and unreachable: a
  // failure no restart-based middleware can see.
  state->port = co_await api(Fn::GetPrivateProfileIntA, api.str("w3svc").addr,
                             api.str("port").addr, cfg.port,
                             api.str("C:\\WINNT\\inetsrv.ini").addr);
  (void)co_await api(Fn::lstrlenA, val.addr);
}

/// Init phase C: synchronization objects and worker infrastructure.
sim::CoTask<void> iis_init_workers(const Api& api, IisState* state, Word* h_ready_out) {
  // Queue infrastructure. NOTE (faithful bug shape): the semaphore result is
  // NOT checked; if its creation fails the queue never wakes the worker.
  state->h_queue_sem = co_await api(Fn::CreateSemaphoreA, 0, 0, 1024, 0);
  const Ptr cs = api.buf(24);
  (void)co_await api(Fn::InitializeCriticalSection, cs.addr);
  state->queue_cs_addr = cs.addr;

  // The config mutex is created and released but never waited on during a
  // clean start — the first WaitForSingleObject in this process is the
  // worker's queue wait, so a corrupted wait hangs the request engine.
  const Word h_config_mutex =
      co_await api(Fn::CreateMutexA, 0, 0, api.str("IIS_CONFIG_MTX").addr);
  (void)co_await api(Fn::ReleaseMutex, h_config_mutex);

  const Word h_started_event =
      co_await api(Fn::CreateEventA, 0, 1, 0, api.str("IIS_STARTED_EVT").addr);
  (void)co_await api(Fn::ResetEvent, h_started_event);
  (void)co_await api(Fn::PulseEvent, h_started_event);

  // Shared counters (InterlockedXxx touch memory through the pointer).
  const Ptr counters = api.buf(16);
  (void)co_await api(Fn::InterlockedIncrement, counters.addr);
  (void)co_await api(Fn::InterlockedDecrement, counters.addr);
  (void)co_await api(Fn::InterlockedExchange, counters.addr + 4, 42);

  (void)co_await api(Fn::SetPriorityClass, nt::kCurrentProcessPseudoHandle.value, 0x80);

  // Worker-ready handshake event.
  *h_ready_out = co_await api(Fn::CreateEventA, 0, 1, 0, 0);
}

/// Lazy request-log setup: first request opens the log (CreateFileA /
/// SetFilePointer / WriteFile first fire here, under load).
sim::CoTask<void> iis_log_request(const Api& api, const IisConfig& cfg, IisState* state,
                                  const std::string& line) {
  if (state->h_log == 0) {
    state->h_log = co_await api(Fn::CreateFileA, api.str(cfg.log_dir + "\\w3svc.log").addr,
                                nt::kGenericWrite, 1, 0, nt::kOpenAlways, 0, 0);
    co_await log_line(api, state->h_log,
                      "#Software: Microsoft Internet Information Server 3.0");
  }
  // Timestamps for the log entry (request-path first invocations).
  const Ptr st = api.buf(16);
  (void)co_await api(Fn::GetSystemTime, st.addr);
  (void)co_await api(Fn::GetLocalTime, st.addr);
  (void)co_await api(Fn::QueryPerformanceCounter, st.addr);
  co_await log_line(api, state->h_log, line);
  (void)co_await api(Fn::FlushFileBuffers, state->h_log);
}

/// Serves a static file with IIS's request-path machinery: header parsing
/// through the lstr/locale functions, a file-mapping content cache warmed on
/// first use, then CreateFileA + GetFileSize + ReadFile.
sim::CoTask<std::pair<int, std::string>> iis_serve_static(const Api& api,
                                                          const IisConfig& cfg,
                                                          IisState* state,
                                                          const http::Request& req) {
  // Header / URL processing (user-mode string machinery, request-path
  // first invocations).
  const Ptr urlbuf = api.buf(520);
  const Ptr method = api.str(req.method);
  (void)co_await api(Fn::lstrcmpiA, method.addr, api.str("GET").addr);
  const Ptr raw_url = api.str(req.target);
  (void)co_await api(Fn::lstrcpyA, urlbuf.addr, raw_url.addr);
  (void)co_await api(Fn::lstrcpynA, urlbuf.addr, raw_url.addr, 260);
  const Ptr wide = api.buf(1040);
  (void)co_await api(Fn::MultiByteToWideChar, 1252, 0, urlbuf.addr, 0xFFFFFFFF, wide.addr,
                     520);
  (void)co_await api(Fn::WideCharToMultiByte, 1252, 0, wide.addr, 0xFFFFFFFF, urlbuf.addr,
                     520, 0, 0);
  (void)co_await api(Fn::CompareStringA, 1033, 1, urlbuf.addr, 0xFFFFFFFF, raw_url.addr,
                     0xFFFFFFFF);

  // Cache segment, created at first static request.
  if (!state->cache_ready) {
    state->h_cache_map = co_await api(Fn::CreateFileMappingA, nt::kInvalidHandleValue, 0, 4,
                                      0, 65536, api.str("IIS_CACHE_SEG").addr);
    const Word view = co_await api(Fn::MapViewOfFile, state->h_cache_map, 2, 0, 0, 0);
    if (view != 0) (void)co_await api(Fn::UnmapViewOfFile, view);
    state->cache_ready = true;
  }

  std::string rel = req.path();
  for (char& ch : rel) {
    if (ch == '/') ch = '\\';
  }
  if (rel == "\\") rel = "\\index.html";
  const std::string full = state->doc_root + rel;

  // Cache hit: serve the remembered body, bypassing the file system.
  if (auto hit = state->content_cache.find(full); hit != state->content_cache.end()) {
    co_await api.cpu(cfg.static_request_cost / 4);  // cached responses are cheap
    co_return std::pair{200, hit->second};
  }

  const Word attrs = co_await api(Fn::GetFileAttributesA, api.str(full).addr);
  if (attrs == nt::kInvalidFileAttributes) {
    co_return std::pair{404, std::string("<html><body><h1>404 Object Not Found</h1></body></html>")};
  }
  co_await api.cpu(cfg.static_request_cost);

  const Word h = co_await api(Fn::CreateFileA, api.str(full).addr, nt::kGenericRead, 1, 0,
                              nt::kOpenExisting, 0, 0);
  if (h == nt::kInvalidHandleValue) {
    co_return std::pair{500, std::string("<html><body><h1>500 Server Error</h1></body></html>")};
  }
  const Ptr size_high = api.buf(4);
  const Word size = co_await api(Fn::GetFileSize, h, size_high.addr);
  (void)co_await api(Fn::SetFilePointer, h, 0, 0, nt::kFileBegin);

  // Read using the reported size: a corrupted GetFileSize result truncates
  // or over-reads the body — the "incorrect reply" class.
  std::string body;
  if (size != nt::kInvalidHandleValue) {
    const Word chunk_size = 16384;
    const Ptr buffer = api.buf(chunk_size);
    const Ptr n_read = api.buf(4);
    Word remaining = size;
    while (remaining > 0) {
      const Word want = std::min(chunk_size, remaining);
      if (co_await api(Fn::ReadFile, h, buffer.addr, want, n_read.addr, 0) == 0) break;
      const Word n = api.read_u32(n_read);
      if (n == 0) break;
      body += api.mem().read_bytes(buffer, n);
      remaining -= n;
    }
  }
  (void)co_await api(Fn::CloseHandle, h);
  state->content_cache.emplace(full, body);  // whatever we computed is cached
  co_return std::pair{200, std::move(body)};
}

/// The worker thread: drains the queue and serves requests.
sim::Task iis_worker_thread(Ctx c, IisConfig cfg, std::shared_ptr<IisState> state,
                            Word h_ready) {
  Api api(c);
  (void)co_await api(Fn::SetThreadPriority, nt::kCurrentThreadPseudoHandle.value, 1);
  (void)co_await api(Fn::SetEvent, h_ready);
  for (;;) {
    // Block until the accept thread queues a connection.
    const Word w = co_await api(Fn::WaitForSingleObject, state->h_queue_sem, nt::kInfinite);
    if (w != nt::kWaitObject0 && w != nt::kWaitAbandoned) {
      // Corrupted semaphore handle: the worker spins down; requests pile up
      // unanswered — a hang, exactly the kind DTS classified as failure.
      (void)co_await api(Fn::Sleep, nt::kInfinite);
    }
    (void)co_await api(Fn::EnterCriticalSection, state->queue_cs_addr);
    std::shared_ptr<nt::net::Socket> sock;
    if (!state->queue.empty()) {
      sock = std::move(state->queue.front());
      state->queue.pop_front();
    }
    (void)co_await api(Fn::LeaveCriticalSection, state->queue_cs_addr);
    if (sock == nullptr) continue;

    auto req = co_await http::read_request(c, *sock, sim::Duration::seconds(30));
    if (!req) continue;

    std::string body;
    int status = 200;
    if (req->path().rfind("/cgi-bin/", 0) == 0 || req->path().rfind("/scripts/", 0) == 0) {
      auto out = co_await http::run_cgi(api, "cgi.exe", *req, cfg.cgi_timeout);
      if (out) {
        body = std::move(*out);
      } else {
        status = 500;
        body = "<html><body><h1>500 Server Error</h1></body></html>";
      }
    } else {
      auto [st, b] = co_await iis_serve_static(api, cfg, state.get(), *req);
      status = st;
      body = std::move(b);
    }
    sock->send(http::format_response(status, "text/html", body, "Microsoft-IIS/3.0"));
    co_await iis_log_request(api, cfg, state.get(),
                             req->method + " " + req->target + " " + std::to_string(status));
  }
}

/// GOPHERSVC: one selector per connection; "" or "/" returns the menu built
/// from a directory listing, anything else returns that file. File access is
/// on the injectable surface.
sim::Task gopher_service(Ctx c, IisConfig cfg, nt::net::Network* network) {
  Api api(c);
  auto listener = network->listen(api.machine().name(), cfg.gopher_port);
  if (listener == nullptr) co_return;
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    auto selector = co_await sock->recv_until(c, "\r\n", 512, sim::Duration::seconds(20));
    if (!selector) continue;
    selector->resize(selector->size() - 2);
    co_await api.cpu(sim::Duration::millis(600));

    std::string reply;
    if (selector->empty() || *selector == "/") {
      // Menu: one "0<name>\t<selector>\t<host>\t<port>" line per document.
      const Ptr data = api.buf(320);
      const Word h = co_await api(Fn::FindFirstFileA,
                                  api.str(cfg.gopher_root + "\\*").addr, data.addr);
      if (h != nt::kInvalidHandleValue) {
        auto add = [&](const std::string& name) {
          reply += "0" + name + "\t" + name + "\t" + api.machine().name() + "\t" +
                   std::to_string(cfg.gopher_port) + "\r\n";
        };
        add(api.mem().read_cstr(data.offset(44)));
        while (co_await api(Fn::FindNextFileA, h, data.addr) != 0) {
          add(api.mem().read_cstr(data.offset(44)));
        }
        (void)co_await api(Fn::FindClose, h);
      }
      reply += ".\r\n";
    } else {
      auto content = co_await read_file_syscall(api, cfg.gopher_root + "\\" + *selector);
      reply = content ? *content : std::string("3'" + *selector + "' does not exist\r\n.\r\n");
    }
    sock->send(reply);
    co_await nt::sleep_in_sim(c, sim::Duration::millis(200));
  }
}

sim::Task iis_main(Ctx c, IisConfig cfg, nt::net::Network* network) {
  Api api(c);
  auto state = std::make_shared<IisState>();
  state->doc_root = cfg.doc_root;

  const std::string cmdline =
      api.mem().read_cstr(Ptr{co_await api(Fn::GetCommandLineA)});
  const bool under_watchd = cmdline.find("/watchd") != std::string::npos;

  co_await iis_init_system(api, under_watchd);
  co_await api.cpu(cfg.init_cost_per_phase);
  co_await iis_init_config(api, cfg, state.get());
  co_await api.cpu(cfg.init_cost_per_phase);
  Word h_ready = 0;
  co_await iis_init_workers(api, state.get(), &h_ready);
  co_await api.cpu(cfg.init_cost_per_phase);

  // Spawn the worker thread through CreateThread (its start address is an
  // injectable parameter — corruption faults the new thread immediately).
  const Word routine = api.proc().register_routine(
      [cfg, state, h_ready](Ctx tc, Word) {
        return iis_worker_thread(tc, cfg, state, h_ready);
      });
  const Ptr tid_out = api.buf(4);
  const Word h_thread = co_await api(Fn::CreateThread, 0, 65536, routine, 0, 0,
                                     tid_out.addr);
  (void)h_thread;  // unchecked, era style; no handshake wait either

  api.machine().scm().set_service_status(api.proc().pid(), nt::ServiceState::kRunning);

  // MSFTPSVC: the in-process FTP service, when enabled.
  if (cfg.enable_ftp) {
    auto ftp_cfg = cfg.ftp;
    api.proc().spawn_thread(
        [ftp_cfg, network](Ctx tc) { return ftp::ftp_service(tc, ftp_cfg, network); });
  }
  // GOPHERSVC, when enabled.
  if (cfg.enable_gopher) {
    api.proc().spawn_thread(
        [cfg, network](Ctx tc) { return gopher_service(tc, cfg, network); });
  }

  auto listener = network->listen(api.machine().name(),
                                  static_cast<std::uint16_t>(state->port));
  if (listener == nullptr) {
    (void)co_await api(Fn::ExitProcess, 1);
  }

  // Accept loop: enqueue for the worker.
  for (;;) {
    auto sock = co_await listener->accept(c);
    if (sock == nullptr) continue;
    (void)co_await api(Fn::EnterCriticalSection, state->queue_cs_addr);
    state->queue.push_back(std::move(sock));
    (void)co_await api(Fn::LeaveCriticalSection, state->queue_cs_addr);
    (void)co_await api(Fn::ReleaseSemaphore, state->h_queue_sem, 1, 0);
  }
}

}  // namespace

std::string ftp_download_content() {
  return apache_index_content(48 * 1024);  // 48 kB binary-ish payload
}

std::string install_iis(nt::Machine& machine, nt::net::Network& network,
                        const IisConfig& cfg) {
  const std::string index = apache_index_content(cfg.index_size);  // same generator
  machine.fs().put_file(cfg.doc_root + "\\index.html", index);
  if (cfg.enable_ftp) {
    machine.fs().put_file(cfg.ftp.root + "\\download.bin", ftp_download_content());
    machine.fs().put_file(cfg.ftp.root + "\\readme.txt", "Microsoft FTP Service\n");
  }
  if (cfg.enable_gopher) {
    machine.fs().put_file(cfg.gopher_root + "\\about.txt",
                          "Microsoft Gopher Service 3.0\n");
    machine.fs().put_file(cfg.gopher_root + "\\phonebook.txt", "Bell Labs: 908-582-3000\n");
  }
  machine.fs().mkdirs(cfg.log_dir);
  machine.fs().put_file(cfg.metabase_path, std::string(2048, '\x2A'));
  machine.fs().put_file("C:\\WINNT\\inetsrv.ini",
                        "[w3svc]\nvroot=" + cfg.doc_root + "\nlogdir=" + cfg.log_dir + "\n");

  http::register_cgi_program(machine, cfg.cgi_startup_cost);
  nt::net::Network* net = &network;
  machine.register_program(cfg.image, [cfg, net](Ctx c) { return iis_main(c, cfg, net); });

  machine.scm().register_service(nt::ServiceConfig{
      .name = cfg.service_name,
      .image = cfg.image,
      .command_line = cfg.image,
      .start_wait_hint = cfg.start_wait_hint,
  });
  return index;
}

}  // namespace dts::apps
