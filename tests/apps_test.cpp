// End-to-end (fault-free) tests of the simulated servers: Apache's
// two-process architecture, IIS, SQL Server — served over the simulated
// network, driven by ad-hoc clients.
#include <gtest/gtest.h>

#include "apps/apache.h"
#include "apps/http.h"
#include "apps/iis.h"
#include "apps/sql_server.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace dts::apps {
namespace {

using nt::Ctx;
using sim::Duration;

struct AppWorld {
  sim::Simulation simu{99};
  nt::net::Network net{simu};  // must outlive the machines (see netsim.h)
  nt::Machine target{simu, nt::MachineConfig{.name = "target", .cpu_scale = 1.0}};
  nt::Machine control{simu, nt::MachineConfig{.name = "control", .cpu_scale = 0.25}};
};

/// Fetches one URL (single attempt, 20 s timeout). Returns status line+body.
sim::CoTask<std::optional<std::string>> fetch(Ctx c, nt::net::Network& net,
                                              const std::string& path) {
  auto sock = co_await net.connect(c, "target", 80);
  if (sock == nullptr) co_return std::nullopt;
  sock->send("GET " + path + " HTTP/1.0\r\nHost: target\r\n\r\n");
  std::string response;
  for (;;) {
    auto chunk = co_await sock->recv(c, 65536, Duration::seconds(40));
    if (!chunk) co_return std::nullopt;  // timeout
    if (chunk->empty()) break;           // EOF
    response += *chunk;
  }
  co_return response;
}

TEST(Apache, ServesStaticAndCgi) {
  AppWorld w;
  const std::string index = install_apache(w.target, w.net);
  ASSERT_EQ(w.target.scm().start_service("Apache"), nt::Win32Error::kSuccess);

  std::optional<std::string> static_resp, cgi_resp;
  w.control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(5));  // let the server start
    static_resp = co_await fetch(c, w.net, "/index.html");
    cgi_resp = co_await fetch(c, w.net, "/cgi-bin/test.cgi?x=1");
  });
  w.control.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(120));

  ASSERT_TRUE(static_resp.has_value());
  EXPECT_NE(static_resp->find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(static_resp->find(index.substr(0, 60)), std::string::npos);
  EXPECT_GT(static_resp->size(), 115 * 1024u);

  ASSERT_TRUE(cgi_resp.has_value());
  EXPECT_NE(cgi_resp->find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(cgi_resp->find(http::expected_cgi_body("x=1").substr(0, 60)),
            std::string::npos);

  // Two processes: master + worker.
  EXPECT_NE(w.target.find_process_by_image("apache.exe"), nullptr);
  EXPECT_NE(w.target.find_process_by_image("apache_child.exe"), nullptr);
  EXPECT_EQ(w.target.scm().query("Apache")->state, nt::ServiceState::kRunning);
}

TEST(Apache, MasterRespawnsDeadWorker) {
  AppWorld w;
  install_apache(w.target, w.net);
  w.target.scm().start_service("Apache");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));

  nt::Process* worker = w.target.find_process_by_image("apache_child.exe");
  ASSERT_NE(worker, nullptr);
  const nt::Pid first_pid = worker->pid();
  w.target.request_process_exit(first_pid, nt::kExitCodeAccessViolation, "injected");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));

  worker = w.target.find_process_by_image("apache_child.exe");
  ASSERT_NE(worker, nullptr);
  EXPECT_NE(worker->pid(), first_pid);
  // The service (the master) never stopped.
  EXPECT_EQ(w.target.scm().query("Apache")->state, nt::ServiceState::kRunning);
}

TEST(Apache, WorkerStillServesAfterRespawn) {
  AppWorld w;
  const std::string index = install_apache(w.target, w.net);
  w.target.scm().start_service("Apache");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  w.target.request_process_exit(w.target.find_process_by_image("apache_child.exe")->pid(),
                                nt::kExitCodeAccessViolation, "injected");

  std::optional<std::string> resp;
  w.control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(5));
    resp = co_await fetch(c, w.net, "/index.html");
  });
  w.control.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(60));
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->find("HTTP/1.0 200"), std::string::npos);
}

TEST(Apache, WorkerPoolModeServesAndRespawns) {
  // Apache's default multi-child pool (the paper pins it to 1 for
  // reproducibility; the pool must still work).
  AppWorld w;
  ApacheConfig cfg;
  cfg.max_children = 3;
  const std::string index = install_apache(w.target, w.net, cfg);
  w.target.scm().start_service("Apache");
  w.simu.run_until(w.simu.now() + Duration::seconds(15));

  // Three workers share the inherited listen socket.
  int workers = 0;
  for (const auto& rec : w.target.start_history()) {
    if (rec.image == "apache_child.exe") ++workers;
  }
  EXPECT_EQ(workers, 3);

  // Kill one: the master replenishes the pool.
  nt::Process* victim = w.target.find_process_by_image("apache_child.exe");
  ASSERT_NE(victim, nullptr);
  w.target.request_process_exit(victim->pid(), nt::kExitCodeAccessViolation, "injected");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_EQ(w.target.starts_of("apache_child.exe"), 4u);

  // And requests are still served.
  std::optional<std::string> resp;
  w.control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    resp = co_await fetch(c, w.net, "/index.html");
  });
  w.control.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(60));
  ASSERT_TRUE(resp.has_value());
  EXPECT_NE(resp->find("HTTP/1.0 200"), std::string::npos);
}

TEST(Iis, ServesStaticAndCgi) {
  AppWorld w;
  const std::string index = install_iis(w.target, w.net);
  ASSERT_EQ(w.target.scm().start_service("W3SVC"), nt::Win32Error::kSuccess);

  std::optional<std::string> static_resp, cgi_resp, missing_resp;
  w.control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(8));
    static_resp = co_await fetch(c, w.net, "/index.html");
    cgi_resp = co_await fetch(c, w.net, "/cgi-bin/test.cgi?q=2");
    missing_resp = co_await fetch(c, w.net, "/no-such-page.html");
  });
  w.control.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(180));

  ASSERT_TRUE(static_resp.has_value());
  EXPECT_NE(static_resp->find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(static_resp->find("Microsoft-IIS/3.0"), std::string::npos);
  EXPECT_GT(static_resp->size(), 115 * 1024u);

  ASSERT_TRUE(cgi_resp.has_value());
  EXPECT_NE(cgi_resp->find(http::expected_cgi_body("q=2").substr(0, 60)),
            std::string::npos);

  ASSERT_TRUE(missing_resp.has_value());
  EXPECT_NE(missing_resp->find("HTTP/1.0 404"), std::string::npos);
}

TEST(Iis, ActivatesManyMoreFunctionsThanApacheWorker) {
  // Shape of paper Table 1: IIS's activated-function footprint dwarfs
  // Apache's. Here we just check IIS init syscall breadth indirectly via the
  // machine syscall counter (full activation accounting is tested in the
  // injector tests).
  AppWorld w;
  install_iis(w.target, w.net);
  w.target.scm().start_service("W3SVC");
  w.simu.run_until(w.simu.now() + Duration::seconds(30));
  EXPECT_EQ(w.target.scm().query("W3SVC")->state, nt::ServiceState::kRunning);
  EXPECT_GT(w.target.syscalls_made, 60u);
}

TEST(SqlServer, AnswersQuery) {
  AppWorld w;
  const std::string expected = install_sql_server(w.target, w.net);
  ASSERT_EQ(w.target.scm().start_service("MSSQLServer"), nt::Win32Error::kSuccess);

  std::optional<std::string> reply;
  w.control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(15));  // recovery takes a while
    auto sock = co_await w.net.connect(c, "target", 1433);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    sock->send(sql_client_query() + "\n");
    std::string got;
    for (;;) {
      auto chunk = co_await sock->recv(c, 16384, Duration::seconds(30));
      if (!chunk) co_return;
      if (chunk->empty()) break;
      got += *chunk;
    }
    reply = got;
  });
  w.control.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(180));

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, expected);
  EXPECT_NE(reply->find("ROW\t7\taccount-7"), std::string::npos);
}

TEST(SqlServer, ReportsRunningBeforeRecoveryCompletes) {
  // SQL Server reports Running early and recovers databases afterwards
  // (clients simply cannot connect until the listener is up).
  AppWorld w;
  install_sql_server(w.target, w.net);
  w.target.scm().start_service("MSSQLServer");
  w.simu.run_until(w.simu.now() + Duration::millis(500));
  EXPECT_EQ(w.target.scm().query("MSSQLServer")->state, nt::ServiceState::kStartPending);
  w.simu.run_until(w.simu.now() + Duration::seconds(5));
  EXPECT_EQ(w.target.scm().query("MSSQLServer")->state, nt::ServiceState::kRunning);
  // The port only opens after recovery finishes.
  EXPECT_FALSE(w.net.port_open("target", 1433));
  w.simu.run_until(w.simu.now() + Duration::seconds(30));
  EXPECT_TRUE(w.net.port_open("target", 1433));
}

TEST(Http, ParseRequest) {
  auto req = http::parse_request("GET /cgi-bin/x.cgi?a=1 HTTP/1.0\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path(), "/cgi-bin/x.cgi");
  EXPECT_EQ(req->query(), "a=1");
  EXPECT_EQ(req->headers.at("Host"), "h");

  EXPECT_FALSE(http::parse_request("").has_value());
  EXPECT_FALSE(http::parse_request("GARBAGE\r\n\r\n").has_value());
  EXPECT_FALSE(http::parse_request("GET nopath HTTP/1.0\r\n\r\n").has_value());
}

TEST(Http, FormatResponse) {
  const std::string r = http::format_response(404, "text/html", "<x>", "TestServer");
  EXPECT_NE(r.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(r.find("Server: TestServer"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 3), "<x>");
}

}  // namespace
}  // namespace dts::apps
