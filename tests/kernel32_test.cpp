// Per-function tests of the simulated KERNEL32 surface: semantics, error
// codes, and the crash-vs-soft-failure split that the fault-injection
// results depend on.
#include <gtest/gtest.h>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt {
namespace {

using sim::Duration;

/// Runs `body` as the main thread of a fresh process and reports whether the
/// process survived (true) or crashed (false).
class SyscallFixture : public ::testing::Test {
 protected:
  sim::Simulation simu{77};
  Machine m{simu, MachineConfig{.name = "target", .cpu_scale = 1.0}};

  bool run_body(std::function<sim::CoTask<void>(Ctx, Kernel32&)> body) {
    m.register_program("t.exe", [body = std::move(body)](Ctx c) -> sim::Task {
      co_await body(c, c.m().k32());
    });
    const Pid pid = m.start_process("t.exe", "t.exe");
    simu.run_until(simu.now() + Duration::seconds(300));
    for (const auto& rec : m.exit_history()) {
      if (rec.pid == pid) return rec.exit_code < 0xC0000000u;
    }
    return true;  // still running (blocked) counts as alive
  }
};

TEST_F(SyscallFixture, SetFilePointerSemantics) {
  m.fs().put_file("C:\\f.txt", "0123456789");
  bool checked = false;
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Word h = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr("C:\\f.txt").addr,
                                   kGenericRead, 1, 0, kOpenExisting, 0, 0);
    EXPECT_EQ(co_await k.call(c, Fn::SetFilePointer, h, 4, 0, kFileBegin), 4u);
    EXPECT_EQ(co_await k.call(c, Fn::SetFilePointer, h, 2, 0, kFileCurrent), 6u);
    EXPECT_EQ(co_await k.call(c, Fn::SetFilePointer, h, static_cast<Word>(-3), 0, kFileEnd),
              7u);
    // Negative result is an error, not a wrap.
    EXPECT_EQ(co_await k.call(c, Fn::SetFilePointer, h, static_cast<Word>(-99), 0,
                              kFileBegin),
              kInvalidSetFilePointer);
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError), to_dword(Win32Error::kNegativeSeek));
    // Read picks up at the moved offset.
    (void)co_await k.call(c, Fn::SetFilePointer, h, 8, 0, kFileBegin);
    const Ptr buf = mem.alloc(8);
    const Ptr n = mem.alloc(4);
    (void)co_await k.call(c, Fn::ReadFile, h, buf.addr, 8, n.addr, 0);
    EXPECT_EQ(mem.read_bytes(buf, mem.read_u32(n)), "89");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

TEST_F(SyscallFixture, FindFirstNextClose) {
  m.fs().put_file("C:\\web\\a.html", "A");
  m.fs().put_file("C:\\web\\b.html", "BB");
  m.fs().put_file("C:\\web\\c.gif", "");
  std::vector<std::string> names;
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr data = mem.alloc(320);
    const Word h = co_await k.call(c, Fn::FindFirstFileA,
                                   mem.alloc_cstr("C:\\web\\*.html").addr, data.addr);
    EXPECT_NE(h, kInvalidHandleValue);
    names.push_back(mem.read_cstr(data.offset(44)));
    while (co_await k.call(c, Fn::FindNextFileA, h, data.addr) != 0) {
      names.push_back(mem.read_cstr(data.offset(44)));
    }
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError), to_dword(Win32Error::kNoMoreFiles));
    EXPECT_EQ(co_await k.call(c, Fn::FindClose, h), 1u);
    // Missing pattern: INVALID_HANDLE_VALUE + ERROR_FILE_NOT_FOUND.
    EXPECT_EQ(co_await k.call(c, Fn::FindFirstFileA, mem.alloc_cstr("C:\\web\\*.txt").addr,
                              data.addr),
              kInvalidHandleValue);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a.html", "b.html"}));
}

TEST_F(SyscallFixture, EnvironmentVariables) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr name = mem.alloc_cstr("MY_VAR");
    const Ptr value = mem.alloc_cstr("hello");
    EXPECT_EQ(co_await k.call(c, Fn::SetEnvironmentVariableA, name.addr, value.addr), 1u);
    const Ptr out = mem.alloc(64);
    EXPECT_EQ(co_await k.call(c, Fn::GetEnvironmentVariableA, name.addr, out.addr, 64), 5u);
    EXPECT_EQ(mem.read_cstr(out), "hello");
    // Case-insensitive, as on NT.
    EXPECT_EQ(co_await k.call(c, Fn::GetEnvironmentVariableA,
                              mem.alloc_cstr("my_var").addr, out.addr, 64),
              5u);
    // Deletion.
    EXPECT_EQ(co_await k.call(c, Fn::SetEnvironmentVariableA, name.addr, 0), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::GetEnvironmentVariableA, name.addr, out.addr, 64), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError), to_dword(Win32Error::kEnvVarNotFound));
  });
}

TEST_F(SyscallFixture, LstrFamilyIsSehGuarded) {
  // The lstr* functions return 0/NULL on bad pointers instead of crashing —
  // real NT behaviour the fault results depend on.
  const bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    EXPECT_EQ(co_await k.call(c, Fn::lstrlenA, 0xDEAD0000), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::lstrcpyA, 0xDEAD0000, 0xDEAD0000), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::lstrcatA, 0, 0), 0u);
    auto& mem = c.process->mem();
    const Ptr a = mem.alloc_cstr("abc");
    const Ptr b = mem.alloc_cstr("ABC");
    EXPECT_EQ(co_await k.call(c, Fn::lstrcmpiA, a.addr, b.addr), 0u);
    EXPECT_NE(co_await k.call(c, Fn::lstrcmpA, a.addr, b.addr), 0u);
  });
  EXPECT_TRUE(survived);
}

TEST_F(SyscallFixture, WideCharConversionCrashesOnBadPointer) {
  // MultiByteToWideChar is NOT guarded: a corrupted string pointer is an
  // access violation (process death).
  const bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    (void)co_await k.call(c, Fn::MultiByteToWideChar, 1252, 0, 0xDEAD0000, 0xFFFFFFFF,
                          0, 0);
  });
  EXPECT_FALSE(survived);
}

TEST_F(SyscallFixture, WideCharRoundTrip) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr narrow = mem.alloc_cstr("GET /x");
    const Ptr wide = mem.alloc(32);
    const Word n = co_await k.call(c, Fn::MultiByteToWideChar, 1252, 0, narrow.addr,
                                   0xFFFFFFFF, wide.addr, 16);
    EXPECT_EQ(n, 7u);  // 6 chars + NUL
    const Ptr back = mem.alloc(16);
    const Word m2 = co_await k.call(c, Fn::WideCharToMultiByte, 1252, 0, wide.addr,
                                    0xFFFFFFFF, back.addr, 16, 0, 0);
    EXPECT_EQ(m2, 7u);
    EXPECT_EQ(mem.read_cstr(back), "GET /x");
  });
}

TEST_F(SyscallFixture, HeapHandleCorruptionCrashes) {
  // NT heap handles are pointers dereferenced in user mode: HeapAlloc on a
  // corrupted handle is a crash, not an error return.
  const bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    (void)co_await k.call(c, Fn::HeapAlloc, 0x1234, 0, 64);
  });
  EXPECT_FALSE(survived);
}

TEST_F(SyscallFixture, HeapLifecycle) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Word heap = co_await k.call(c, Fn::HeapCreate, 0, 4096, 0);
    const Word p = co_await k.call(c, Fn::HeapAlloc, heap, 0, 100);
    EXPECT_NE(p, 0u);
    EXPECT_EQ(co_await k.call(c, Fn::HeapSize, heap, 0, p), 100u);
    const Word q = co_await k.call(c, Fn::HeapReAlloc, heap, 0, p, 200);
    EXPECT_NE(q, 0u);
    EXPECT_EQ(co_await k.call(c, Fn::HeapSize, heap, 0, q), 200u);
    EXPECT_EQ(co_await k.call(c, Fn::HeapFree, heap, 0, q), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::HeapFree, heap, 0, q), 0u);  // double free fails
    // A 4 GB request fails with NULL rather than allocating.
    EXPECT_EQ(co_await k.call(c, Fn::HeapAlloc, heap, 0, 0xFFFFFFFF), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::HeapDestroy, heap), 1u);
  });
}

TEST_F(SyscallFixture, PrivateProfileFamily) {
  m.fs().put_file("C:\\app.ini", "[server]\nport=8080\nname=alpha\n");
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr file = mem.alloc_cstr("C:\\app.ini");
    const Ptr section = mem.alloc_cstr("server");
    const Ptr out = mem.alloc(64);
    EXPECT_EQ(co_await k.call(c, Fn::GetPrivateProfileIntA, section.addr,
                              mem.alloc_cstr("port").addr, 99, file.addr),
              8080u);
    EXPECT_EQ(co_await k.call(c, Fn::GetPrivateProfileIntA, section.addr,
                              mem.alloc_cstr("missing").addr, 99, file.addr),
              99u);
    (void)co_await k.call(c, Fn::GetPrivateProfileStringA, section.addr,
                          mem.alloc_cstr("name").addr, mem.alloc_cstr("def").addr,
                          out.addr, 64, file.addr);
    EXPECT_EQ(mem.read_cstr(out), "alpha");
    // Write-back then read.
    (void)co_await k.call(c, Fn::WritePrivateProfileStringA, section.addr,
                          mem.alloc_cstr("extra").addr, mem.alloc_cstr("42").addr,
                          file.addr);
    EXPECT_EQ(co_await k.call(c, Fn::GetPrivateProfileIntA, section.addr,
                              mem.alloc_cstr("extra").addr, 0, file.addr),
              42u);
  });
}

TEST_F(SyscallFixture, SemaphoreSemantics) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Word sem = co_await k.call(c, Fn::CreateSemaphoreA, 0, 2, 3, 0);
    EXPECT_NE(sem, 0u);
    // Two immediate acquisitions succeed, the third times out.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, sem, 0), kWaitObject0);
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, sem, 0), kWaitObject0);
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, sem, 10), kWaitTimeout);
    // Release over max fails and leaves the count untouched.
    auto& mem = c.process->mem();
    const Ptr prev = mem.alloc(4);
    EXPECT_EQ(co_await k.call(c, Fn::ReleaseSemaphore, sem, 99, prev.addr), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::ReleaseSemaphore, sem, 1, prev.addr), 1u);
    EXPECT_EQ(mem.read_u32(prev), 0u);
    // Invalid count corrupted to -1 (0xFFFFFFFF) at creation: invalid param.
    EXPECT_EQ(co_await k.call(c, Fn::CreateSemaphoreA, 0, 0xFFFFFFFF, 16, 0), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError),
              to_dword(Win32Error::kInvalidParameter));
  });
}

TEST_F(SyscallFixture, MutexOwnershipRules) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Word mtx = co_await k.call(c, Fn::CreateMutexA, 0, 1, 0);  // initially owned
    // Recursive acquisition by the owner succeeds instantly.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, mtx, 0), kWaitObject0);
    EXPECT_EQ(co_await k.call(c, Fn::ReleaseMutex, mtx), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::ReleaseMutex, mtx), 1u);
    // Fully released: releasing again is ERROR_NOT_OWNER.
    EXPECT_EQ(co_await k.call(c, Fn::ReleaseMutex, mtx), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError), to_dword(Win32Error::kNotOwner));
  });
}

TEST_F(SyscallFixture, PseudoHandles) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Word h_proc = co_await k.call(c, Fn::GetCurrentProcess);
    EXPECT_EQ(h_proc, kCurrentProcessPseudoHandle.value);
    // Waiting on your own (running) process times out rather than failing —
    // the "set all bits" handle-corruption hazard.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, h_proc, 20), kWaitTimeout);
    // Closing a pseudo-handle is ignored.
    EXPECT_EQ(co_await k.call(c, Fn::CloseHandle, h_proc), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::GetCurrentProcessId), c.process->pid());
    EXPECT_EQ(co_await k.call(c, Fn::GetCurrentThreadId), c.tid);
  });
}

TEST_F(SyscallFixture, WaitForMultipleObjects) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Word ev1 = co_await k.call(c, Fn::CreateEventA, 0, 1, 0, 0);
    const Word ev2 = co_await k.call(c, Fn::CreateEventA, 0, 1, 1, 0);  // signaled
    const Ptr handles = mem.alloc(8);
    mem.write_u32(handles, ev1);
    mem.write_u32(handles.offset(4), ev2);
    // Wait-any returns the index of the signaled handle.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForMultipleObjects, 2, handles.addr, 0, 100),
              kWaitObject0 + 1);
    // Wait-all times out while ev1 is unsignaled.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForMultipleObjects, 2, handles.addr, 1, 50),
              kWaitTimeout);
    (void)co_await k.call(c, Fn::SetEvent, ev1);
    EXPECT_EQ(co_await k.call(c, Fn::WaitForMultipleObjects, 2, handles.addr, 1, 50),
              kWaitObject0);
    // Corrupted count (0xFFFFFFFF > MAXIMUM_WAIT_OBJECTS) fails cleanly.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForMultipleObjects, 0xFFFFFFFF, handles.addr, 0,
                              10),
              kWaitFailed);
    // Corrupted array pointer is kernel-probed: error, not crash.
    EXPECT_EQ(co_await k.call(c, Fn::WaitForMultipleObjects, 2, 0xDEAD0000, 0, 10),
              kWaitFailed);
  });
}

TEST_F(SyscallFixture, FileMappingRoundTrip) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Word map = co_await k.call(c, Fn::CreateFileMappingA, kInvalidHandleValue, 0, 4,
                                     0, 256, mem.alloc_cstr("SharedSeg").addr);
    EXPECT_NE(map, 0u);
    const Word view1 = co_await k.call(c, Fn::MapViewOfFile, map, 2, 0, 0, 0);
    EXPECT_NE(view1, 0u);
    mem.write_u32(Ptr{view1}, 0xFEEDFACE);
    EXPECT_EQ(co_await k.call(c, Fn::UnmapViewOfFile, view1), 1u);  // copies back
    const Word view2 = co_await k.call(c, Fn::MapViewOfFile, map, 2, 0, 0, 0);
    EXPECT_EQ(mem.read_u32(Ptr{view2}), 0xFEEDFACEu);
    // Outsized mapping (corrupted size) fails cleanly on the 48 MB box.
    EXPECT_EQ(co_await k.call(c, Fn::CreateFileMappingA, kInvalidHandleValue, 0, 4, 0,
                              0xFFFFFFFF, 0),
              0u);
  });
}

TEST_F(SyscallFixture, MiscInformationCalls) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    EXPECT_EQ(co_await k.call(c, Fn::GetVersion), 0x05650004u);  // NT 4.0 build 1381
    EXPECT_EQ(co_await k.call(c, Fn::GetACP), 1252u);
    const Ptr buf = mem.alloc(64);
    const Word n = co_await k.call(c, Fn::GetSystemDirectoryA, buf.addr, 64);
    EXPECT_EQ(mem.read_cstr(buf), "C:\\WINNT\\system32");
    EXPECT_EQ(n, 17u);
    // IsBadReadPtr: TRUE (1) means bad.
    EXPECT_EQ(co_await k.call(c, Fn::IsBadReadPtr, buf.addr, 16), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::IsBadReadPtr, 0xDEAD0000, 16), 1u);
    // FormatMessage writes an "Error 0x..." string.
    const Ptr msg = mem.alloc(64);
    const Word len = co_await k.call(c, Fn::FormatMessageA, 0, 0, 5, 0, msg.addr, 64, 0);
    EXPECT_GT(len, 0u);
    EXPECT_EQ(mem.read_cstr(msg).rfind("Error 0x", 0), 0u);
    // GlobalMemoryStatus reports the paper testbed's 48 MB.
    const Ptr ms = mem.alloc(32);
    (void)co_await k.call(c, Fn::GlobalMemoryStatus, ms.addr);
    EXPECT_EQ(mem.read_u32(ms.offset(8)), 48u << 20);
  });
}

TEST_F(SyscallFixture, RaiseExceptionTerminatesWithCode) {
  const bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    (void)co_await k.call(c, Fn::RaiseException, 0xE0001234, 0, 0, 0);
  });
  EXPECT_FALSE(survived);
  EXPECT_EQ(m.exit_history().back().exit_code, 0xE0001234u);
}

TEST_F(SyscallFixture, CriticalSectionCrashModes) {
  // Entering an uninitialized critical section is a crash (NT 4.0).
  bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Ptr cs = c.process->mem().alloc(24);
    (void)co_await k.call(c, Fn::EnterCriticalSection, cs.addr);
  });
  EXPECT_FALSE(survived);
}

TEST_F(SyscallFixture, CriticalSectionNormalUse) {
  const bool survived = run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    const Ptr cs = c.process->mem().alloc(24);
    (void)co_await k.call(c, Fn::InitializeCriticalSection, cs.addr);
    (void)co_await k.call(c, Fn::EnterCriticalSection, cs.addr);
    (void)co_await k.call(c, Fn::EnterCriticalSection, cs.addr);  // recursive
    (void)co_await k.call(c, Fn::LeaveCriticalSection, cs.addr);
    (void)co_await k.call(c, Fn::LeaveCriticalSection, cs.addr);
    (void)co_await k.call(c, Fn::DeleteCriticalSection, cs.addr);
  });
  EXPECT_TRUE(survived);
}

TEST_F(SyscallFixture, InterlockedOps) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr counter = mem.alloc(4);
    mem.write_u32(counter, 10);
    EXPECT_EQ(co_await k.call(c, Fn::InterlockedIncrement, counter.addr), 11u);
    EXPECT_EQ(co_await k.call(c, Fn::InterlockedDecrement, counter.addr), 10u);
    EXPECT_EQ(co_await k.call(c, Fn::InterlockedExchange, counter.addr, 99), 10u);
    EXPECT_EQ(mem.read_u32(counter), 99u);
  });
}

TEST_F(SyscallFixture, GetTempFileNameCreatesFile) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr out = mem.alloc(260);
    const Word unique = co_await k.call(c, Fn::GetTempFileNameA,
                                        mem.alloc_cstr("C:\\TEMP").addr,
                                        mem.alloc_cstr("dts").addr, 7, out.addr);
    EXPECT_EQ(unique, 7u);
    const std::string path = mem.read_cstr(out);
    EXPECT_TRUE(c.m().fs().is_file(path)) << path;
  });
}

TEST_F(SyscallFixture, FileTimeFamily) {
  m.fs().put_file("C:\\f.dat", "x");
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Word h = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr("C:\\f.dat").addr,
                                   kGenericRead, 1, 0, kOpenExisting, 0, 0);
    const Ptr ft = mem.alloc(8);
    EXPECT_EQ(co_await k.call(c, Fn::GetFileTime, h, 0, 0, ft.addr), 1u);
    // Probed output: corrupted pointer is an error, not a crash.
    EXPECT_EQ(co_await k.call(c, Fn::GetFileTime, h, 0, 0, 0xDEAD0000), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::SetFileTime, h, 0, 0, ft.addr), 1u);
    // CompareFileTime reads both in user mode.
    const Ptr later = mem.alloc(8);
    co_await sleep_in_sim(c, sim::Duration::millis(5));
    const Ptr st = mem.alloc(16);
    (void)co_await k.call(c, Fn::GetSystemTime, st.addr);
    (void)co_await k.call(c, Fn::SystemTimeToFileTime, st.addr, later.addr);
    EXPECT_EQ(co_await k.call(c, Fn::CompareFileTime, ft.addr, later.addr),
              static_cast<Word>(-1));
    EXPECT_EQ(co_await k.call(c, Fn::CompareFileTime, ft.addr, ft.addr), 0u);
  });
}

TEST_F(SyscallFixture, VolumeAndDriveInfo) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    EXPECT_EQ(co_await k.call(c, Fn::GetDriveTypeA, mem.alloc_cstr("C:\\").addr), 3u);
    EXPECT_EQ(co_await k.call(c, Fn::GetDriveTypeA, mem.alloc_cstr("D:\\").addr), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::GetLogicalDrives), 0x4u);
    const Ptr name = mem.alloc(32);
    const Ptr serial = mem.alloc(4);
    const Ptr fsname = mem.alloc(16);
    EXPECT_EQ(co_await k.call(c, Fn::GetVolumeInformationA, mem.alloc_cstr("C:\\").addr,
                              name.addr, 32, serial.addr, 0, 0, fsname.addr, 16),
              1u);
    EXPECT_EQ(mem.read_cstr(fsname), "NTFS");
    EXPECT_NE(mem.read_u32(serial), 0u);
  });
}

TEST_F(SyscallFixture, ExpandEnvironmentStrings) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr src = mem.alloc_cstr("%SYSTEMROOT%\\system32 and %MISSING%");
    const Ptr dst = mem.alloc(128);
    const Word n = co_await k.call(c, Fn::ExpandEnvironmentStringsA, src.addr, dst.addr,
                                   128);
    EXPECT_GT(n, 0u);
    EXPECT_EQ(mem.read_cstr(dst), "C:\\WINNT\\system32 and %MISSING%");
    // Too-small buffer: returns the required size without writing.
    EXPECT_GT(co_await k.call(c, Fn::ExpandEnvironmentStringsA, src.addr, dst.addr, 2), 2u);
  });
}

TEST_F(SyscallFixture, MulDivAndStringProbes) {
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    EXPECT_EQ(co_await k.call(c, Fn::MulDiv, 10, 6, 4), 15u);
    EXPECT_EQ(co_await k.call(c, Fn::MulDiv, 7, 0xFFFFFFFF /*-1*/, 1),
              0xFFFFFFF9u);  // signed semantics
    EXPECT_EQ(co_await k.call(c, Fn::MulDiv, 1, 1, 0), 0xFFFFFFFFu);  // div by zero
    auto& mem = c.process->mem();
    const Ptr ok = mem.alloc_cstr("fine");
    EXPECT_EQ(co_await k.call(c, Fn::IsBadStringPtrA, ok.addr, 64), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::IsBadStringPtrA, 0xDEAD0000, 64), 1u);
  });
}

TEST_F(SyscallFixture, ProfileStringFromWinIni) {
  m.fs().put_file("C:\\WINNT\\win.ini", "[intl]\nsLanguage=enu\n");
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr out = mem.alloc(32);
    (void)co_await k.call(c, Fn::GetProfileStringA, mem.alloc_cstr("intl").addr,
                          mem.alloc_cstr("sLanguage").addr, mem.alloc_cstr("def").addr,
                          out.addr, 32);
    EXPECT_EQ(mem.read_cstr(out), "enu");
    (void)co_await k.call(c, Fn::GetProfileStringA, mem.alloc_cstr("intl").addr,
                          mem.alloc_cstr("missing").addr, mem.alloc_cstr("def").addr,
                          out.addr, 32);
    EXPECT_EQ(mem.read_cstr(out), "def");
  });
}

TEST_F(SyscallFixture, MoveFileExReplacesExisting) {
  m.fs().put_file("C:\\a.txt", "AAA");
  m.fs().put_file("C:\\b.txt", "BBB");
  run_body([&](Ctx c, Kernel32& k) -> sim::CoTask<void> {
    auto& mem = c.process->mem();
    const Ptr from = mem.alloc_cstr("C:\\a.txt");
    const Ptr to = mem.alloc_cstr("C:\\b.txt");
    // Without the replace flag the move fails on an existing target.
    EXPECT_EQ(co_await k.call(c, Fn::MoveFileExA, from.addr, to.addr, 0), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::MoveFileExA, from.addr, to.addr, 1), 1u);
  });
  EXPECT_EQ(m.fs().get_file("C:\\b.txt"), "AAA");
  EXPECT_FALSE(m.fs().exists("C:\\a.txt"));
}

}  // namespace
}  // namespace dts::nt
