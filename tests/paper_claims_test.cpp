// Integration tests that pin the PAPER'S QUALITATIVE CLAIMS on capped
// campaigns (a fault-budget slice of every configuration). These are the
// regression guards for the reproduction itself: if a substrate change
// breaks one of the published orderings, a test here goes red.
//
// Capped sweeps keep the runtime test-suite-friendly; the bench/ harnesses
// run the full sweeps.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/report.h"

namespace dts::core {
namespace {

constexpr std::size_t kCap = 120;  // faults per workload set

const WorkloadSetResult& cached_set(const std::string& workload, mw::MiddlewareKind m,
                                    mw::WatchdVersion v = mw::WatchdVersion::kV3) {
  // Campaigns are shared across the tests in this binary.
  static std::map<std::string, WorkloadSetResult> cache;
  std::string key = workload + "/" + std::string(to_string(m));
  if (m == mw::MiddlewareKind::kWatchd) key += std::string(to_string(v));
  auto it = cache.find(key);
  if (it == cache.end()) {
    RunConfig cfg;
    cfg.workload = workload_by_name(workload);
    cfg.middleware = m;
    cfg.watchd_version = v;
    CampaignOptions opt;
    opt.seed = 7;
    opt.max_faults = kCap;
    it = cache.emplace(key, run_workload_set(cfg, opt)).first;
  }
  return it->second;
}

double failure_pct(const WorkloadSetResult& s) { return s.percent(Outcome::kFailure); }

using MK = mw::MiddlewareKind;
using WV = mw::WatchdVersion;

TEST(PaperClaims, MiddlewareCutsFailuresMarkedly) {
  // Paper §4.1: "The failure percentages for all server programs decreased
  // markedly when MSCS or watchd was used."
  for (const char* w : {"Apache1", "IIS", "SQL"}) {
    const double none = failure_pct(cached_set(w, MK::kNone));
    const double mscs = failure_pct(cached_set(w, MK::kMscs));
    const double watchd = failure_pct(cached_set(w, MK::kWatchd));
    EXPECT_GT(none, 2 * mscs) << w;
    EXPECT_GT(none, 2 * watchd) << w;
  }
}

TEST(PaperClaims, WatchdEliminatesApache1Failures) {
  // Paper §4.1: "for Apache1, all failure outcomes were eliminated using
  // watchd."
  EXPECT_EQ(failure_pct(cached_set("Apache1", MK::kWatchd)), 0.0);
}

TEST(PaperClaims, WatchdBeatsOrMatchesMscsEverywhere) {
  // Paper §5: "The watchd failure coverage was higher than for MSCS."
  // Both configurations sweep the identical capped fault slice, so failure
  // COUNTS compare like-for-like. Percentages would wobble on denominator
  // off-by-ones: activated-fault counts exclude inert corruptions
  // (corrupted word == golden word), and an argument value can be inert
  // under one middleware and not the other.
  auto failures = [](const WorkloadSetResult& s) {
    auto counts = s.outcome_counts();
    const auto it = counts.find(Outcome::kFailure);
    return it == counts.end() ? std::size_t{0} : it->second;
  };
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL"}) {
    EXPECT_LE(failures(cached_set(w, MK::kWatchd)), failures(cached_set(w, MK::kMscs)))
        << w;
  }
}

TEST(PaperClaims, ImprovedWatchdCoverageAbove90Percent) {
  // Paper §5: "the improved watchd exhibited high failure coverage (greater
  // than 90%) for all tested server programs."
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL"}) {
    EXPECT_GT(100.0 - failure_pct(cached_set(w, MK::kWatchd)), 90.0) << w;
  }
}

TEST(PaperClaims, MiddlewareHasNoEffectOnApache2) {
  // Paper §4.1: "MSCS and watchd ... have no effect on the Apache2 process"
  // (only the first process of a service is monitored; Apache1 itself
  // respawns the worker).
  const double none = failure_pct(cached_set("Apache2", MK::kNone));
  EXPECT_NEAR(failure_pct(cached_set("Apache2", MK::kMscs)), none, 2.0);
  EXPECT_NEAR(failure_pct(cached_set("Apache2", MK::kWatchd)), none, 2.0);
  // And no middleware-initiated restarts show up for worker faults.
  for (const auto& r : cached_set("Apache2", MK::kWatchd).runs) {
    EXPECT_EQ(r.restarts, 0) << r.summary();
  }
}

TEST(PaperClaims, IisFailsMoreThanApacheStandalone) {
  // Paper §4.2: "the Apache web server exhibits a lower percentage of
  // failure outcomes than IIS" — stand-alone, by roughly 2x.
  const WorkloadSetResult* apache[] = {&cached_set("Apache1", MK::kNone),
                                       &cached_set("Apache2", MK::kNone)};
  const OutcomeDistribution combined = merge_distributions(apache);
  const double apache_failures = combined.percent(Outcome::kFailure);
  const double iis_failures = failure_pct(cached_set("IIS", MK::kNone));
  EXPECT_GT(iis_failures, 1.5 * apache_failures);
}

TEST(PaperClaims, WatchdLadderIis) {
  // Paper §4.3 / Fig. 5: "Only IIS with Watchd2 showed an improvement in the
  // results, with a dramatic decrease in the percentage of failure outcomes"
  // and V3 left IIS unchanged.
  const double v1 = failure_pct(cached_set("IIS", MK::kWatchd, WV::kV1));
  const double v2 = failure_pct(cached_set("IIS", MK::kWatchd, WV::kV2));
  const double v3 = failure_pct(cached_set("IIS", MK::kWatchd, WV::kV3));
  EXPECT_GT(v1, 1.5 * v2);     // dramatic V1 -> V2 improvement
  EXPECT_NEAR(v2, v3, 1.0);    // V3 unchanged for IIS
}

TEST(PaperClaims, WatchdLadderApache1AndSql) {
  // Paper §4.3 / Fig. 5: V1 -> V2 leaves Apache1 and SQL essentially
  // unchanged; V3 "dramatically improved the results for Apache1 and SQL".
  for (const char* w : {"Apache1", "SQL"}) {
    const double v1 = failure_pct(cached_set(w, MK::kWatchd, WV::kV1));
    const double v2 = failure_pct(cached_set(w, MK::kWatchd, WV::kV2));
    const double v3 = failure_pct(cached_set(w, MK::kWatchd, WV::kV3));
    EXPECT_NEAR(v1, v2, 2.0) << w;       // no change V1 -> V2
    EXPECT_GT(v2, 2 * v3 + 1e-9) << w;   // dramatic V2 -> V3 improvement
  }
}

TEST(PaperClaims, NormalSuccessTimesMatchCalibration) {
  // Paper Fig. 4: 14.21 s (Apache) vs 18.94 s (IIS) normal success, and no
  // appreciable middleware overhead.
  for (const auto m : {MK::kNone, MK::kMscs, MK::kWatchd}) {
    for (const auto& row : response_time_rows(cached_set("Apache1", m))) {
      if (row.outcome_label == "Normal") {
        EXPECT_NEAR(row.seconds.mean, 14.21, 0.7) << static_cast<int>(m);
      }
    }
    for (const auto& row : response_time_rows(cached_set("IIS", m))) {
      if (row.outcome_label == "Normal") {
        EXPECT_NEAR(row.seconds.mean, 18.94, 0.7) << static_cast<int>(m);
      }
    }
  }
}

TEST(PaperClaims, RestartsRemainSuccessOutcomes) {
  // Internal consistency across the grid: every run with restarts that is
  // not a failure must be classified as a restart outcome.
  for (const char* w : {"Apache1", "IIS", "SQL"}) {
    for (const auto m : {MK::kMscs, MK::kWatchd}) {
      for (const auto& r : cached_set(w, m).runs) {
        if (!r.activated || r.outcome == Outcome::kFailure) continue;
        if (r.restarts > 0) {
          EXPECT_TRUE(r.outcome == Outcome::kRestartSuccess ||
                      r.outcome == Outcome::kRestartRetrySuccess)
              << r.summary();
        }
      }
    }
  }
}

TEST(PaperClaims, ActivatedFunctionFootprintOrdering) {
  // Paper Table 1 ordering.
  const auto a1 = cached_set("Apache1", MK::kNone).activated_functions.size();
  const auto a2 = cached_set("Apache2", MK::kNone).activated_functions.size();
  const auto iis = cached_set("IIS", MK::kNone).activated_functions.size();
  const auto sql = cached_set("SQL", MK::kNone).activated_functions.size();
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, sql);
  EXPECT_LE(sql, iis);
}

}  // namespace
}  // namespace dts::core
