// Tests for the observability layer (src/obs/): trace ring semantics,
// injection-context pinning, forensics dumps, the campaign metrics registry
// (Prometheus text + Chrome trace JSON exports), NT event-log retention, and
// the end-to-end campaign wiring (journal "fx" records, forensics files,
// trace-off byte-identity). Labelled `obs` in CTest.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/run.h"
#include "exec/journal.h"
#include "ntsim/event_log.h"
#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sim/rng.h"

namespace dts {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// --- RingBuffer ------------------------------------------------------------

TEST(Ring, CapacityZeroIsDisabled) {
  obs::RingBuffer<int> ring;
  EXPECT_FALSE(ring.enabled());
  ring.push(1);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(Ring, OverwritesOldestAndKeepsOrder) {
  obs::RingBuffer<int> ring;
  ring.set_capacity(3);
  for (int i = 1; i <= 5; ++i) ring.push(i);
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring[0], 3);  // oldest retained
  EXPECT_EQ(ring[1], 4);
  EXPECT_EQ(ring[2], 5);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{3, 4, 5}));
}

TEST(Ring, FindLastIfSearchesNewestFirst) {
  obs::RingBuffer<int> ring;
  ring.set_capacity(4);
  for (int i : {2, 4, 6, 8}) ring.push(i);
  int* hit = ring.find_last_if([](int v) { return v < 7; });
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 6);
  EXPECT_EQ(ring.find_last_if([](int v) { return v > 100; }), nullptr);
}

// --- SyscallTrace ----------------------------------------------------------

obs::TraceEvent make_event(std::uint64_t seq, bool injected = false) {
  obs::TraceEvent e;
  e.seq = seq;
  e.time = sim::TimePoint{} + sim::Duration::micros(static_cast<std::int64_t>(seq) * 1000);
  e.pid = 100;
  e.argc = 2;
  e.args[0] = seq;
  e.args[1] = 0x40;
  e.injected_here = injected;
  return e;
}

TEST(Trace, ModeStringsRoundTrip) {
  for (auto mode : {obs::TraceMode::kOff, obs::TraceMode::kFailures, obs::TraceMode::kAll}) {
    obs::TraceMode parsed{};
    ASSERT_TRUE(obs::trace_mode_from_string(obs::to_string(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  obs::TraceMode out{};
  EXPECT_FALSE(obs::trace_mode_from_string("verbose", &out));
  EXPECT_FALSE(obs::trace_mode_from_string("", &out));
}

TEST(Trace, ResultBackfillsRetainedEntry) {
  obs::SyscallTrace trace;
  trace.set_capacity(4);
  trace.record_call(make_event(1));
  trace.record_call(make_event(2));
  trace.record_result(1, 0x77);
  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].completed);
  EXPECT_EQ(entries[0].result, 0x77u);
  EXPECT_FALSE(entries[1].completed);  // crashing calls never get a result
}

TEST(Trace, InjectionContextPinnedAgainstEviction) {
  obs::SyscallTrace trace;
  trace.set_capacity(4);
  for (std::uint64_t s = 1; s <= 3; ++s) trace.record_call(make_event(s));
  trace.record_call(make_event(4, /*injected=*/true));
  // A long post-injection tail scrolls the ring right past the fault...
  for (std::uint64_t s = 5; s <= 10; ++s) trace.record_call(make_event(s));
  const auto tail = trace.entries();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().seq, 7u);  // corrupted call long gone from the ring

  // ...but the pinned context still holds the corrupted call plus its
  // predecessors, newest (= corrupted) last.
  const auto& ctx = trace.injection_context();
  ASSERT_EQ(ctx.size(), 4u);
  EXPECT_EQ(ctx.front().seq, 1u);
  EXPECT_EQ(ctx.back().seq, 4u);
  EXPECT_TRUE(ctx.back().injected_here);
}

TEST(Trace, ResultBackfillReachesPinnedContext) {
  obs::SyscallTrace trace;
  trace.set_capacity(3);
  trace.record_call(make_event(1));
  trace.record_call(make_event(2, /*injected=*/true));
  trace.record_result(2, 0xdead);
  const auto& ctx = trace.injection_context();
  ASSERT_EQ(ctx.size(), 2u);
  EXPECT_TRUE(ctx.back().completed);
  EXPECT_EQ(ctx.back().result, 0xdeadu);
}

TEST(Trace, EventRenderingMarksInjection) {
  obs::TraceEvent e = make_event(3, /*injected=*/true);
  e.completed = true;
  e.result = 1;
  const std::string line = e.to_string();
  EXPECT_NE(line.find("pid 100"), std::string::npos);
  EXPECT_NE(line.find("FAULT INJECTED"), std::string::npos);
  EXPECT_NE(line.find("-> 0x1"), std::string::npos);
  EXPECT_EQ(make_event(4).to_string().find("FAULT INJECTED"), std::string::npos);
}

TEST(Trace, ForensicsDumpShowsBothWindows) {
  obs::SyscallTrace trace;
  trace.set_capacity(3);
  for (std::uint64_t s = 1; s <= 2; ++s) trace.record_call(make_event(s));
  trace.record_call(make_event(3, /*injected=*/true));
  for (std::uint64_t s = 4; s <= 8; ++s) trace.record_call(make_event(s));

  obs::SpanLog spans;
  spans.add("mscs.recovery", sim::TimePoint{} + sim::Duration::seconds(1),
            sim::TimePoint{} + sim::Duration::seconds(3));

  const std::string dump =
      obs::forensics_dump("ReadFile.hFile#1:zero", {"outcome: failure"}, &spans, trace);
  EXPECT_NE(dump.find("=== DTS forensics: ReadFile.hFile#1:zero ==="), std::string::npos);
  EXPECT_NE(dump.find("outcome: failure"), std::string::npos);
  EXPECT_NE(dump.find("mscs.recovery"), std::string::npos);
  EXPECT_NE(dump.find("injection context"), std::string::npos);
  EXPECT_NE(dump.find("FAULT INJECTED"), std::string::npos);
  // The tail window is distinct here (the fault scrolled out), so both
  // sections render.
  EXPECT_NE(dump.find("calls before run end"), std::string::npos);
}

// --- Metrics registry ------------------------------------------------------

TEST(Metrics, HandlesAreStableAndSharedByLabels) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("dts_test_total", {{"k", "v"}});
  obs::Counter& b = reg.counter("dts_test_total", {{"k", "v"}});
  obs::Counter& c = reg.counter("dts_test_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(2);
  b.inc();
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, KindCollisionThrows) {
  obs::MetricsRegistry reg;
  reg.counter("dts_collide");
  EXPECT_THROW(reg.gauge("dts_collide"), std::logic_error);
}

TEST(Metrics, HistogramBucketsAndSum) {
  obs::Histogram h({1.0, 5.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);  // upper edges are inclusive
  h.observe(7.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 112.5, 1e-6);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
}

// Every non-comment line of the exposition must be `name{labels} value` or
// `name value`, histogram buckets must be cumulative and end at +Inf.
TEST(Metrics, PrometheusTextParses) {
  obs::MetricsRegistry reg;
  reg.counter("dts_runs_total", {{"outcome", "failure"}}, "executed runs").inc(3);
  reg.gauge("dts_queue_depth", {}, "pending faults").set(7.5);
  obs::Histogram& h =
      reg.histogram("dts_resp_seconds", {{"workload", "IIS"}}, {1.0, 5.0}, "resp");
  h.observe(0.3);
  h.observe(2.0);
  h.observe(90.0);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP dts_runs_total executed runs"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dts_runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("dts_runs_total{outcome=\"failure\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dts_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dts_resp_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds_bucket{workload=\"IIS\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds_bucket{workload=\"IIS\",le=\"5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds_bucket{workload=\"IIS\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds_count{workload=\"IIS\"} 3"), std::string::npos);
  // Summary-style quantile estimates ride along (nearest rank over the same
  // bucket snapshot, reported as bucket upper bounds; the 90.0 observation
  // lives past the last finite bound, so p95/p99 clamp to it).
  EXPECT_NE(text.find("dts_resp_seconds{workload=\"IIS\",quantile=\"0.5\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds{workload=\"IIS\",quantile=\"0.95\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("dts_resp_seconds{workload=\"IIS\",quantile=\"0.99\"} 5"),
            std::string::npos);

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    // name[{labels}] SP value
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    std::string name = line.substr(0, sp);
    const auto brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_') << line;
    }
  }
}

// A tiny recursive-descent JSON checker — enough to prove the Chrome trace
// export is well-formed without a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}
  bool valid() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(s_[pos_]));
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(Metrics, ChromeTraceJsonIsValid) {
  obs::MetricsRegistry reg;
  reg.set_thread_name(0, "worker-0");
  reg.add_complete_event("ReadFile.hFile#1:zero", "run", 0, 100.0, 2500.0,
                         {{"outcome", "failure \"quoted\""}});
  reg.add_complete_event("WriteFile.buf#2:rand", "run", 1, 300.5, 90.0);
  const std::string json = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
}

TEST(Metrics, WriteMetricsFilesEmitsBothExports) {
  obs::MetricsRegistry reg;
  reg.counter("dts_runs_total").inc();
  reg.add_complete_event("run", "run", 0, 1.0, 2.0);
  const std::string path = temp_path("obs_metrics.prom");
  std::string error;
  ASSERT_TRUE(obs::write_metrics_files(reg, path, &error)) << error;
  std::ifstream prom(path);
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("dts_runs_total 1"), std::string::npos);
  std::ifstream trace(path + ".trace.json");
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_TRUE(JsonChecker(trace_text.str()).valid());
}

// --- NT event-log retention ------------------------------------------------

TEST(EventLog, RetentionDropsOldestKeepsOrder) {
  nt::EventLog log;
  log.set_retention(3);
  for (int i = 1; i <= 5; ++i) {
    log.write(sim::TimePoint{} + sim::Duration::seconds(i), nt::EventSeverity::kInformation,
              "mscs", 1000, "restart " + std::to_string(i));
  }
  ASSERT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.entries().front().message, "restart 3");
  EXPECT_EQ(log.entries().back().message, "restart 5");
  for (std::size_t i = 1; i < log.entries().size(); ++i) {
    EXPECT_LE(log.entries()[i - 1].time.count_micros(), log.entries()[i].time.count_micros());
  }
}

TEST(EventLog, SetRetentionTrimsImmediately) {
  nt::EventLog log;
  for (int i = 1; i <= 4; ++i) {
    log.write(sim::TimePoint{} + sim::Duration::seconds(i), nt::EventSeverity::kError,
              "watchd", 2000, "hb " + std::to_string(i));
  }
  log.set_retention(2);
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries().front().message, "hb 3");
  EXPECT_EQ(log.count("watchd", 2000), 2u);
}

TEST(EventLog, DefaultRetentionKeepsEverything) {
  nt::EventLog log;
  EXPECT_EQ(log.retention(), 0u);
  for (int i = 0; i < 100; ++i) {
    log.write(sim::TimePoint{}, nt::EventSeverity::kInformation, "s", 1, "m");
  }
  EXPECT_EQ(log.entries().size(), 100u);
}

// --- end-to-end: forced failure forensics ----------------------------------

// The acceptance bar for forensics: a failing run traced with a bounded ring
// must dump the corrupted call plus its preceding calls, even when the
// post-injection tail is long.
TEST(ObsIntegration, ForcedFailureRunDumpsCorruptedCallWithPredecessors) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS");  // stand-alone: crash => failure
  cfg.trace_limit = 16;

  const auto fns = core::profile_workload(cfg, 7);
  const inject::FaultList list =
      inject::FaultList::for_functions(cfg.workload.target_image, fns).sampled(24);

  bool found = false;
  for (const auto& fault : list.faults) {
    cfg.seed = sim::Rng::mix(7, sim::Rng::hash(fault.id()));
    core::FaultInjectionRun run(cfg);
    const core::RunResult r = run.execute(fault);
    const auto& trace = run.interceptor().syscall_trace();
    if (r.outcome != core::Outcome::kFailure || !r.activated ||
        trace.injection_context().size() < 2) {
      continue;
    }
    found = true;
    const auto& ctx = trace.injection_context();
    EXPECT_TRUE(ctx.back().injected_here);
    for (std::size_t i = 0; i + 1 < ctx.size(); ++i) {
      EXPECT_FALSE(ctx[i].injected_here);
      EXPECT_LT(ctx[i].seq, ctx.back().seq);
    }
    const std::string dump = obs::forensics_dump(
        fault.id(), {"outcome: " + std::string(to_string(r.outcome))}, &run.spans(), trace);
    EXPECT_NE(dump.find("FAULT INJECTED"), std::string::npos);
    EXPECT_NE(dump.find(std::string(nt::to_string(fault.fn))), std::string::npos);
    EXPECT_NE(dump.find("injection context"), std::string::npos);
    break;
  }
  ASSERT_TRUE(found) << "no activated failure with a traced predecessor in the sample";
}

// --- end-to-end: campaign wiring -------------------------------------------

TEST(ObsIntegration, CampaignEmitsJournalForensicsFilesAndMetrics) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS");

  const std::string journal = temp_path("obs_campaign.jsonl");
  const std::string fx_dir = temp_path("obs_forensics");
  std::filesystem::remove(journal);
  std::filesystem::remove_all(fx_dir);

  obs::MetricsRegistry metrics;
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 10;
  opt.jobs = 2;
  opt.journal_path = journal;
  opt.metrics = &metrics;
  opt.trace = obs::TraceMode::kAll;
  opt.forensics_depth = 12;
  opt.forensics_dir = fx_dir;
  const core::WorkloadSetResult set = core::run_workload_set(cfg, opt);
  ASSERT_FALSE(set.runs.empty());

  // Journal records carry the v2 timings and (trace=all) a forensics dump.
  exec::JournalKey key;
  key.workload = cfg.workload.name;
  key.middleware = static_cast<int>(cfg.middleware);
  key.watchd_version = static_cast<int>(cfg.watchd_version);
  key.seed = 7;
  key.fault_count = set.runs.size();
  std::string error;
  const auto records = exec::read_journal(journal, key, &error);
  ASSERT_TRUE(records.has_value()) << error;
  ASSERT_FALSE(records->empty());
  std::size_t with_fx = 0, with_wall = 0, with_sim = 0;
  for (const auto& rec : *records) {
    with_fx += rec.forensics.empty() ? 0 : 1;
    with_wall += rec.wall_us > 0 ? 1 : 0;
    with_sim += rec.sim_us > 0 ? 1 : 0;
    if (!rec.forensics.empty()) {
      EXPECT_NE(rec.forensics.find("=== DTS forensics"), std::string::npos);
    }
  }
  EXPECT_EQ(with_fx, records->size());  // kAll dumps every executed run
  EXPECT_EQ(with_wall, records->size());
  EXPECT_EQ(with_sim, records->size());

  // The on-disk dumps exist too.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(fx_dir)) {
    ++files;
    EXPECT_NE(e.path().filename().string().find("run-"), std::string::npos);
  }
  EXPECT_EQ(files, records->size());

  // Metrics counted each executed run once.
  const std::string prom = metrics.prometheus_text();
  EXPECT_NE(prom.find("dts_runs_total"), std::string::npos);
  EXPECT_NE(prom.find("dts_response_time_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("workload=\"IIS\""), std::string::npos);
  std::uint64_t runs_counted = 0;
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("dts_runs_total{", 0) == 0) {
      runs_counted += std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    }
  }
  EXPECT_EQ(runs_counted, records->size());
  EXPECT_TRUE(JsonChecker(metrics.chrome_trace_json()).valid());
}

// Snapshot/export while writers hammer the registry: the exported text must
// never show a torn histogram — its _count line always equals the cumulative
// +Inf bucket of the same scrape, and counters only grow between scrapes.
// Runs under the TSan preset (label `obs`), which is the real referee here.
TEST(Metrics, ConcurrentWritersNeverTearSnapshotOrExport) {
  obs::MetricsRegistry metrics;
  obs::Histogram& hist =
      metrics.histogram("dts_stress_seconds", {}, {0.001, 0.01, 0.1}, "stress");
  obs::Counter& runs = metrics.counter("dts_stress_total", {}, "stress");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hist, &runs, &stop, t] {
      double v = 0.0001 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        hist.observe(v);
        runs.inc();
        v = v < 1.0 ? v * 1.7 : 0.0001 * (t + 1);
      }
    });
  }

  std::uint64_t last_runs = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string prom = metrics.prometheus_text();
    std::uint64_t inf_bucket = 0, count = 0, counter = 0;
    std::istringstream lines(prom);
    std::string line;
    while (std::getline(lines, line)) {
      const std::uint64_t value =
          std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
      if (line.rfind("dts_stress_seconds_bucket{le=\"+Inf\"}", 0) == 0) {
        inf_bucket = value;
      } else if (line.rfind("dts_stress_seconds_count", 0) == 0) {
        count = value;
      } else if (line.rfind("dts_stress_total", 0) == 0) {
        counter = value;
      }
    }
    EXPECT_EQ(count, inf_bucket);  // a torn read would break this identity
    EXPECT_GE(counter, last_runs);
    last_runs = counter;
    // snapshot() shares the same derived-count rule; exercising it under
    // the writers lets TSan referee the sample path too.
    (void)metrics.snapshot();
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Quiesced, the totals agree exactly.
  EXPECT_EQ(hist.count(), runs.value());
}

// Tracing must observe, never perturb: a fully traced campaign serializes
// byte-identically to the default (trace-off) campaign.
TEST(ObsIntegration, TraceAllOutputByteIdenticalToTraceOff) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 8;

  const std::string off = core::serialize_workload_set(core::run_workload_set(cfg, opt));

  obs::MetricsRegistry metrics;
  opt.trace = obs::TraceMode::kAll;
  opt.metrics = &metrics;
  opt.jobs = 2;
  const std::string on = core::serialize_workload_set(core::run_workload_set(cfg, opt));
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace dts
