// Tests for the system-independent fault-class taxonomy (paper §5) and for
// the gopher service extension.
#include <gtest/gtest.h>

#include <map>

#include "apps/iis.h"
#include "core/run.h"
#include "core/workload.h"
#include "inject/fault_class.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace dts {
namespace {

using inject::FaultClass;

TEST(FaultClass, ClassifiesCanonicalParameters) {
  auto cls = [](const char* fn, const char* param) {
    const auto* info = nt::Kernel32Registry::instance().by_name(fn);
    EXPECT_NE(info, nullptr) << fn;
    for (int i = 0; i < info->param_count(); ++i) {
      if (info->params[static_cast<std::size_t>(i)] == param) {
        return inject::classify(static_cast<nt::Fn>(info->id), i);
      }
    }
    ADD_FAILURE() << fn << " has no param " << param;
    return std::optional<FaultClass>{};
  };

  EXPECT_EQ(cls("CreateFileA", "lpFileName"), FaultClass::kPathArgument);
  EXPECT_EQ(cls("CreateNamedPipeA", "lpName"), FaultClass::kPathArgument);
  EXPECT_EQ(cls("ReadFile", "lpBuffer"), FaultClass::kBufferPointer);
  EXPECT_EQ(cls("ReadFile", "nNumberOfBytesToRead"), FaultClass::kBufferSize);
  EXPECT_EQ(cls("ReadFile", "hFile"), FaultClass::kFileHandle);
  EXPECT_EQ(cls("WaitForSingleObject", "hHandle"), FaultClass::kSyncHandle);
  EXPECT_EQ(cls("WaitForSingleObject", "dwMilliseconds"), FaultClass::kTimeout);
  EXPECT_EQ(cls("SetEvent", "hEvent"), FaultClass::kSyncHandle);
  EXPECT_EQ(cls("CreateProcessA", "lpCommandLine"), FaultClass::kProcessControl);
  EXPECT_EQ(cls("CreateThread", "lpStartAddress"), FaultClass::kProcessControl);
  EXPECT_EQ(cls("HeapAlloc", "hHeap"), FaultClass::kMemoryManagement);
  EXPECT_EQ(cls("GetPrivateProfileStringA", "lpKeyName"), FaultClass::kConfigString);
  EXPECT_EQ(cls("CreateFileA", "dwCreationDisposition"), FaultClass::kFlags);
}

TEST(FaultClass, TaxonomyCoversMostOfTheImplementedSurface) {
  // The taxonomy should classify the overwhelming majority of injection
  // points; unclassified leftovers are reserved/rare arguments.
  std::size_t total = 0, classified = 0;
  for (std::uint16_t id = 0; id < nt::kImplementedFunctionCount; ++id) {
    const auto fn = static_cast<nt::Fn>(id);
    const auto& info = nt::Kernel32Registry::instance().info(fn);
    for (int p = 0; p < info.param_count(); ++p) {
      ++total;
      if (inject::classify(fn, p)) ++classified;
    }
  }
  EXPECT_GT(total, 300u);
  EXPECT_GT(static_cast<double>(classified) / static_cast<double>(total), 0.85)
      << classified << "/" << total;
}

TEST(FaultClass, ClassFaultListsRoundTrip) {
  const inject::FaultList paths =
      inject::faults_for_class("inetinfo.exe", FaultClass::kPathArgument);
  EXPECT_GT(paths.faults.size(), 10u);
  for (const auto& f : paths.faults) {
    EXPECT_EQ(inject::classify(f.fn, f.param_index), FaultClass::kPathArgument)
        << f.id();
  }
  // Restriction to a subset of functions.
  std::set<nt::Fn> only{nt::Fn::CreateFileA};
  const inject::FaultList restricted =
      inject::faults_for_class("x", FaultClass::kPathArgument, only);
  EXPECT_EQ(restricted.faults.size(), 3u);  // lpFileName x 3 corruption types
}

TEST(FaultClass, HistogramCountsPerClass) {
  std::set<nt::Fn> fns{nt::Fn::ReadFile, nt::Fn::WaitForSingleObject};
  const auto hist = inject::class_histogram(fns);
  std::map<FaultClass, std::size_t> m(hist.begin(), hist.end());
  EXPECT_EQ(m[FaultClass::kFileHandle], 1u);    // ReadFile.hFile
  EXPECT_EQ(m[FaultClass::kBufferPointer], 3u);  // lpBuffer, lpNumberOfBytesRead, lpOverlapped
  EXPECT_EQ(m[FaultClass::kBufferSize], 1u);    // nNumberOfBytesToRead
  EXPECT_EQ(m[FaultClass::kSyncHandle], 1u);    // hHandle
  EXPECT_EQ(m[FaultClass::kTimeout], 1u);       // dwMilliseconds
}

TEST(FaultClass, ClassifyOutOfRangeIsNullopt) {
  EXPECT_EQ(inject::classify(nt::Fn::ReadFile, -1), std::nullopt);
  const auto& info = nt::Kernel32Registry::instance().info(nt::Fn::ReadFile);
  EXPECT_EQ(inject::classify(nt::Fn::ReadFile, info.param_count()), std::nullopt);
}

TEST(FaultClass, IterationsExtendTheInvocationAxis) {
  std::set<nt::Fn> only{nt::Fn::WaitForSingleObject};
  const inject::FaultList one =
      inject::faults_for_class("x", FaultClass::kTimeout, only, /*iterations=*/1);
  const inject::FaultList three =
      inject::faults_for_class("x", FaultClass::kTimeout, only, /*iterations=*/3);
  ASSERT_EQ(one.faults.size(), 3u);  // dwMilliseconds x 3 corruption types
  EXPECT_EQ(three.faults.size(), 9u);
  std::set<int> invocations;
  for (const auto& f : three.faults) invocations.insert(f.invocation);
  EXPECT_EQ(invocations, (std::set<int>{1, 2, 3}));
}

TEST(FaultClass, HistogramOfEmptySetIsEmpty) {
  EXPECT_TRUE(inject::class_histogram({}).empty());
}

TEST(FaultClass, ConfigStringCampaignOnApacheEndToEnd) {
  // The system-independent bridge, driven end to end: take the config-string
  // class, project it onto Apache's profile-read call, and run every
  // resulting fault. All faults must activate (Apache reads its config during
  // startup) and every run must land in one of the paper's five outcomes.
  std::set<nt::Fn> only{nt::Fn::GetPrivateProfileStringA};
  const inject::FaultList list =
      inject::faults_for_class("apache.exe", FaultClass::kConfigString, only);
  ASSERT_GE(list.faults.size(), 9u);

  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  cfg.seed = 77;
  std::map<core::Outcome, int> counts;
  for (const auto& fault : list.faults) {
    const core::RunResult r = core::execute_run(cfg, fault);
    EXPECT_TRUE(r.activated) << fault.id();
    ++counts[r.outcome];
  }
  // Corrupting config reads must not be universally fatal (some corruptions
  // still parse) nor universally benign (a flipped settings pointer breaks
  // the server) — the mix is what makes the class interesting.
  EXPECT_GT(counts[core::Outcome::kNormalSuccess], 0);
  int not_normal = 0;
  for (const auto& [o, n] : counts) {
    if (o != core::Outcome::kNormalSuccess) not_normal += n;
  }
  EXPECT_GT(not_normal, 0);
}

TEST(FaultClass, StringRoundTrip) {
  for (FaultClass c : inject::kAllFaultClasses) {
    EXPECT_EQ(inject::fault_class_from_string(inject::to_string(c)), c);
  }
  EXPECT_EQ(inject::fault_class_from_string("nonsense"), std::nullopt);
}

// ---------------------------------------------------------------- gopher

TEST(Gopher, MenuAndDocumentRetrieval) {
  sim::Simulation simu{17};
  nt::net::Network net{simu};
  nt::Machine target{simu, nt::MachineConfig{.name = "target"}};
  nt::Machine control{simu, nt::MachineConfig{.name = "control"}};
  apps::IisConfig cfg;
  cfg.enable_gopher = true;
  apps::install_iis(target, net, cfg);
  target.scm().start_service("W3SVC");

  std::optional<std::string> menu, doc, missing;
  auto fetch = [&](nt::Ctx c, const std::string& selector)
      -> sim::CoTask<std::optional<std::string>> {
    auto sock = co_await net.connect(c, "target", 70);
    if (sock == nullptr) co_return std::nullopt;
    sock->send(selector + "\r\n");
    std::string out;
    for (;;) {
      auto chunk = co_await sock->recv(c, 4096, sim::Duration::seconds(20));
      if (!chunk) co_return std::nullopt;
      if (chunk->empty()) break;
      out += *chunk;
    }
    co_return out;
  };
  control.register_program("client.exe", [&](nt::Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, sim::Duration::seconds(10));
    menu = co_await fetch(c, "");
    doc = co_await fetch(c, "phonebook.txt");
    missing = co_await fetch(c, "nope.txt");
  });
  control.start_process("client.exe", "client.exe");
  simu.run_until(simu.now() + sim::Duration::seconds(120));

  ASSERT_TRUE(menu.has_value());
  EXPECT_NE(menu->find("0about.txt\tabout.txt\ttarget\t70"), std::string::npos);
  EXPECT_NE(menu->find(".\r\n"), std::string::npos);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(*doc, "Bell Labs: 908-582-3000\n");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->rfind("3'", 0), 0u);  // gopher error type
}

}  // namespace
}  // namespace dts
