// Unit tests for the SQL engine substrate.
#include <gtest/gtest.h>

#include "apps/sql_engine.h"

namespace dts::apps::sql {
namespace {

Database make_db() {
  Database db;
  EXPECT_TRUE(execute(db, "CREATE TABLE t (id INT, name TEXT, score INT)").ok);
  EXPECT_TRUE(execute(db, "INSERT INTO t VALUES (1, 'alice', 90)").ok);
  EXPECT_TRUE(execute(db, "INSERT INTO t VALUES (2, 'bob', 75)").ok);
  EXPECT_TRUE(execute(db, "INSERT INTO t VALUES (3, 'carol', 90)").ok);
  return db;
}

TEST(SqlLexer, BasicTokens) {
  std::string err;
  auto toks = lex("SELECT a, b FROM t WHERE x >= 10", &err);
  ASSERT_TRUE(toks.has_value());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[2].text, ",");
  EXPECT_EQ((*toks)[8].text, ">=");
  EXPECT_EQ((*toks)[9].kind, Token::Kind::kNumber);
  EXPECT_EQ(toks->back().kind, Token::Kind::kEnd);
}

TEST(SqlLexer, StringLiteralsWithEscapes) {
  std::string err;
  auto toks = lex("INSERT INTO t VALUES ('it''s')", &err);
  ASSERT_TRUE(toks.has_value());
  bool found = false;
  for (const auto& t : *toks) {
    if (t.kind == Token::Kind::kString) {
      EXPECT_EQ(t.text, "it's");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SqlLexer, UnterminatedStringFails) {
  std::string err;
  EXPECT_FALSE(lex("SELECT 'oops", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(SqlLexer, NegativeNumbers) {
  std::string err;
  auto toks = lex("INSERT INTO t VALUES (-5)", &err);
  ASSERT_TRUE(toks.has_value());
  bool found = false;
  for (const auto& t : *toks) {
    if (t.kind == Token::Kind::kNumber) {
      EXPECT_EQ(t.text, "-5");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SqlExec, CreateAndInsert) {
  Database db = make_db();
  const Table* t = db.find("T");  // case-insensitive
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rows().size(), 3u);
  EXPECT_FALSE(execute(db, "CREATE TABLE t (x INT)").ok);  // duplicate
}

TEST(SqlExec, SelectStar) {
  Database db = make_db();
  auto r = execute(db, "SELECT * FROM t");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"id", "name", "score"}));
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST(SqlExec, SelectWhereEquals) {
  Database db = make_db();
  auto r = execute(db, "SELECT name FROM t WHERE id = 2");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(to_string(r.rows[0][0]), "bob");
}

TEST(SqlExec, SelectWhereOperators) {
  Database db = make_db();
  EXPECT_EQ(execute(db, "SELECT id FROM t WHERE score > 80").rows.size(), 2u);
  EXPECT_EQ(execute(db, "SELECT id FROM t WHERE score >= 75").rows.size(), 3u);
  EXPECT_EQ(execute(db, "SELECT id FROM t WHERE score < 80").rows.size(), 1u);
  EXPECT_EQ(execute(db, "SELECT id FROM t WHERE score <> 90").rows.size(), 1u);
  EXPECT_EQ(execute(db, "SELECT id FROM t WHERE name = 'alice'").rows.size(), 1u);
}

TEST(SqlExec, OrderBy) {
  Database db = make_db();
  auto r = execute(db, "SELECT name FROM t ORDER BY score DESC");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.rows.size(), 3u);
  // Stable sort: alice (90) before carol (90), bob (75) last.
  EXPECT_EQ(to_string(r.rows[0][0]), "alice");
  EXPECT_EQ(to_string(r.rows[1][0]), "carol");
  EXPECT_EQ(to_string(r.rows[2][0]), "bob");
}

TEST(SqlExec, DeleteAndUpdate) {
  Database db = make_db();
  auto del = execute(db, "DELETE FROM t WHERE score = 90");
  EXPECT_TRUE(del.ok);
  EXPECT_EQ(del.affected, 2u);
  EXPECT_EQ(execute(db, "SELECT * FROM t").rows.size(), 1u);

  auto upd = execute(db, "UPDATE t SET score = 80 WHERE id = 2");
  EXPECT_TRUE(upd.ok);
  EXPECT_EQ(upd.affected, 1u);
  EXPECT_EQ(to_string(execute(db, "SELECT score FROM t WHERE id = 2").rows[0][0]), "80");
}

TEST(SqlExec, DropTable) {
  Database db = make_db();
  EXPECT_TRUE(execute(db, "DROP TABLE t").ok);
  EXPECT_FALSE(execute(db, "SELECT * FROM t").ok);
}

TEST(SqlExec, Errors) {
  Database db = make_db();
  EXPECT_FALSE(execute(db, "SELECT * FROM missing").ok);
  EXPECT_FALSE(execute(db, "SELECT bogus FROM t").ok);
  EXPECT_FALSE(execute(db, "INSERT INTO t VALUES ('wrong', 1, 2)").ok);  // type
  EXPECT_FALSE(execute(db, "INSERT INTO t VALUES (1)").ok);              // arity
  EXPECT_FALSE(execute(db, "SELEC * FROM t").ok);                        // typo
  EXPECT_FALSE(execute(db, "SELECT * FROM t WHERE id ~ 3").ok);          // bad op
}

TEST(SqlExec, TypeMismatchInWhere) {
  Database db = make_db();
  EXPECT_FALSE(execute(db, "SELECT * FROM t WHERE id = 'one'").ok);
  EXPECT_FALSE(execute(db, "SELECT * FROM t WHERE name = 42").ok);
}

TEST(SqlSerialize, RoundTrip) {
  Database db = make_db();
  const std::string image = db.serialize();
  auto restored = Database::deserialize(image);
  ASSERT_TRUE(restored.has_value());
  auto r = execute(*restored, "SELECT name FROM t WHERE id = 3");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(to_string(r.rows[0][0]), "carol");
}

TEST(SqlSerialize, CorruptImageRejected) {
  EXPECT_FALSE(Database::deserialize("garbage\n").has_value());
  EXPECT_FALSE(Database::deserialize(std::string(4096, '\0')).has_value());
  // Row with wrong arity.
  EXPECT_FALSE(Database::deserialize("T\tt\ta:int\nR\t1\t2\n").has_value());
  // Non-numeric int field.
  EXPECT_FALSE(Database::deserialize("T\tt\ta:int\nR\tx\n").has_value());
}

TEST(SqlResult, TextFormats) {
  Database db = make_db();
  auto ok = execute(db, "SELECT id FROM t WHERE id = 1");
  const std::string text = ok.to_text();
  EXPECT_NE(text.find("COLS\tid"), std::string::npos);
  EXPECT_NE(text.find("ROW\t1"), std::string::npos);
  EXPECT_NE(text.find("DONE 1"), std::string::npos);

  auto err = execute(db, "SELECT * FROM nope");
  EXPECT_EQ(err.to_text().rfind("ERROR", 0), 0u);

  auto ins = execute(db, "INSERT INTO t VALUES (9, 'x', 1)");
  EXPECT_EQ(ins.to_text(), "OK 1\n");
}

}  // namespace
}  // namespace dts::apps::sql
