// Tests for the named-pipe substrate (CreateNamedPipeA / ConnectNamedPipe /
// client CreateFileA on the pipe namespace / duplex ReadFile+WriteFile /
// DisconnectNamedPipe / WaitNamedPipeA), including the SQL Server pipe
// transport end-to-end.
#include <gtest/gtest.h>

#include "apps/sql_server.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace dts::nt {
namespace {

using sim::Duration;

struct PipeWorld {
  sim::Simulation simu{31};
  net::Network net{simu};  // must outlive the machine
  Machine m{simu, MachineConfig{.name = "target", .cpu_scale = 1.0}};

  void run_for(Duration d) { simu.run_until(simu.now() + d); }
};

constexpr const char* kPipeName = "\\\\.\\pipe\\test\\echo";

/// Simple echo server over one pipe instance: reads a line, writes it back,
/// disconnects, re-listens.
sim::Task pipe_echo_server(Ctx c, int rounds) {
  auto& k = c.m().k32();
  auto& mem = c.process->mem();
  const Word h = co_await k.call(c, Fn::CreateNamedPipeA, mem.alloc_cstr(kPipeName).addr,
                                 3, 0, 255, 4096, 4096, 0, 0);
  EXPECT_NE(h, kInvalidHandleValue);
  const Ptr buf = mem.alloc(256);
  const Ptr n_out = mem.alloc(4);
  for (int i = 0; i < rounds; ++i) {
    const Word ok = co_await k.call(c, Fn::ConnectNamedPipe, h, 0);
    if (ok == 0 && c.thread().last_error != to_dword(Win32Error::kPipeConnected)) {
      co_return;
    }
    if (co_await k.call(c, Fn::ReadFile, h, buf.addr, 256, n_out.addr, 0) != 0) {
      const Word n = mem.read_u32(n_out);
      (void)co_await k.call(c, Fn::WriteFile, h, buf.addr, n, 0, 0);
    }
    co_await sleep_in_sim(c, Duration::millis(50));
    (void)co_await k.call(c, Fn::DisconnectNamedPipe, h);
  }
}

TEST(NamedPipe, EchoRoundTripAndReconnect) {
  PipeWorld w;
  w.m.register_program("server.exe",
                       [](Ctx c) { return pipe_echo_server(c, /*rounds=*/3); });
  std::vector<std::string> replies;
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    co_await sleep_in_sim(c, Duration::millis(100));
    for (int i = 0; i < 2; ++i) {
      // WaitNamedPipeA succeeds once an instance is listening again.
      EXPECT_EQ(co_await k.call(c, Fn::WaitNamedPipeA, mem.alloc_cstr(kPipeName).addr,
                                5000),
                1u);
      const Word h = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr(kPipeName).addr,
                                     kGenericRead | kGenericWrite, 0, 0, kOpenExisting,
                                     0, 0);
      EXPECT_NE(h, kInvalidHandleValue);
      const std::string msg = "hello-" + std::to_string(i);
      const Ptr out = mem.alloc_cstr(msg);
      (void)co_await k.call(c, Fn::WriteFile, h, out.addr,
                            static_cast<Word>(msg.size()), 0, 0);
      const Ptr buf = mem.alloc(256);
      const Ptr n_out = mem.alloc(4);
      if (co_await k.call(c, Fn::ReadFile, h, buf.addr, 256, n_out.addr, 0) != 0) {
        replies.push_back(mem.read_bytes(buf, mem.read_u32(n_out)));
      }
      (void)co_await k.call(c, Fn::CloseHandle, h);
      co_await sleep_in_sim(c, Duration::millis(200));
    }
  });
  w.m.start_process("server.exe", "server.exe");
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(30));
  EXPECT_EQ(replies, (std::vector<std::string>{"hello-0", "hello-1"}));
}

TEST(NamedPipe, MissingPipeIsFileNotFound) {
  PipeWorld w;
  Word handle = 0, error = 0;
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    handle = co_await k.call(c, Fn::CreateFileA,
                             c.process->mem().alloc_cstr("\\\\.\\pipe\\nope").addr,
                             kGenericRead, 0, 0, kOpenExisting, 0, 0);
    error = co_await k.call(c, Fn::GetLastError);
  });
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(5));
  EXPECT_EQ(handle, kInvalidHandleValue);
  EXPECT_EQ(error, to_dword(Win32Error::kFileNotFound));
}

TEST(NamedPipe, BusyInstanceReportsPipeBusy) {
  PipeWorld w;
  Word second_error = 0;
  w.m.register_program("server.exe", [](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word h = co_await k.call(c, Fn::CreateNamedPipeA,
                                   c.process->mem().alloc_cstr(kPipeName).addr, 3, 0,
                                   255, 0, 0, 0, 0);
    (void)co_await k.call(c, Fn::ConnectNamedPipe, h, 0);
    co_await sleep_in_sim(c, Duration::seconds(100));  // hold the connection
  });
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    co_await sleep_in_sim(c, Duration::millis(100));
    const Word h1 = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr(kPipeName).addr,
                                    kGenericRead | kGenericWrite, 0, 0, kOpenExisting, 0,
                                    0);
    EXPECT_NE(h1, kInvalidHandleValue);
    // The single instance is now connected: a second open is PIPE_BUSY.
    const Word h2 = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr(kPipeName).addr,
                                    kGenericRead | kGenericWrite, 0, 0, kOpenExisting, 0,
                                    0);
    EXPECT_EQ(h2, kInvalidHandleValue);
    second_error = co_await k.call(c, Fn::GetLastError);
    co_await sleep_in_sim(c, Duration::seconds(100));  // keep h1 open
  });
  w.m.start_process("server.exe", "server.exe");
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(5));
  EXPECT_EQ(second_error, to_dword(Win32Error::kPipeBusy));
}

TEST(NamedPipe, ServerDeathBreaksClientRead) {
  PipeWorld w;
  Word read_ok = 99, error = 0;
  w.m.register_program("server.exe", [](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word h = co_await k.call(c, Fn::CreateNamedPipeA,
                                   c.process->mem().alloc_cstr(kPipeName).addr, 3, 0,
                                   255, 0, 0, 0, 0);
    (void)co_await k.call(c, Fn::ConnectNamedPipe, h, 0);
    co_await sleep_in_sim(c, Duration::millis(200));
    throw AccessViolation{0xBAD, false};  // crash with a connected client
  });
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    co_await sleep_in_sim(c, Duration::millis(100));
    const Word h = co_await k.call(c, Fn::CreateFileA, mem.alloc_cstr(kPipeName).addr,
                                   kGenericRead | kGenericWrite, 0, 0, kOpenExisting, 0,
                                   0);
    const Ptr buf = mem.alloc(64);
    read_ok = co_await k.call(c, Fn::ReadFile, h, buf.addr, 64, 0, 0);
    error = co_await k.call(c, Fn::GetLastError);
  });
  w.m.start_process("server.exe", "server.exe");
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(10));
  EXPECT_EQ(read_ok, 0u);
  EXPECT_EQ(error, to_dword(Win32Error::kBrokenPipe));
}

TEST(NamedPipe, SqlServerAnswersOverPipe) {
  // End-to-end: a local tool queries SQL Server through its named-pipe
  // transport instead of TCP.
  PipeWorld w;
  const std::string expected = apps::install_sql_server(w.m, w.net);
  w.m.scm().start_service("MSSQLServer");

  std::string reply;
  w.m.register_program("osql.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    const Ptr name = mem.alloc_cstr("\\\\.\\pipe\\sql\\query");
    // Wait until SQL's pipe listener is up. WaitNamedPipeA fails fast while
    // the pipe does not exist at all, so poll until creation, then wait.
    Word waited = 0;
    for (int i = 0; i < 600 && waited != 1; ++i) {
      waited = co_await k.call(c, Fn::WaitNamedPipeA, name.addr, 1000);
      if (waited != 1) co_await sleep_in_sim(c, Duration::millis(200));
    }
    EXPECT_EQ(waited, 1u);
    const Word h = co_await k.call(c, Fn::CreateFileA, name.addr,
                                   kGenericRead | kGenericWrite, 0, 0, kOpenExisting, 0,
                                   0);
    EXPECT_NE(h, kInvalidHandleValue);
    if (h == kInvalidHandleValue) co_return;
    const std::string query = apps::sql_client_query() + "\n";
    const Ptr out = mem.alloc_cstr(query);
    (void)co_await k.call(c, Fn::WriteFile, h, out.addr,
                          static_cast<Word>(query.size()), 0, 0);
    const Ptr buf = mem.alloc(4096);
    const Ptr n_out = mem.alloc(4);
    for (;;) {
      if (co_await k.call(c, Fn::ReadFile, h, buf.addr, 4096, n_out.addr, 0) == 0) break;
      const Word n = mem.read_u32(n_out);
      if (n == 0) break;
      reply += mem.read_bytes(buf, n);
      if (reply.size() >= expected.size()) break;
    }
  });
  w.m.start_process("osql.exe", "osql.exe");
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(reply, expected);
}

TEST(NamedPipe, CallNamedPipeTransaction) {
  // The one-shot open+write+read+close convenience against the echo server.
  PipeWorld w;
  w.m.register_program("server.exe",
                       [](Ctx c) { return pipe_echo_server(c, /*rounds=*/2); });
  Word ok = 0;
  std::string reply;
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    co_await sleep_in_sim(c, Duration::millis(100));
    const Ptr in = mem.alloc_cstr("ping!");
    const Ptr out = mem.alloc(64);
    const Ptr n = mem.alloc(4);
    ok = co_await k.call(c, Fn::CallNamedPipeA, mem.alloc_cstr(kPipeName).addr, in.addr,
                         5, out.addr, 64, n.addr, 5000);
    if (ok != 0) reply = mem.read_bytes(out, mem.read_u32(n));
  });
  w.m.start_process("server.exe", "server.exe");
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(30));
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(reply, "ping!");
}

TEST(NamedPipe, CallNamedPipeMissingPipe) {
  PipeWorld w;
  Word ok = 99, error = 0;
  w.m.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    const Ptr in = mem.alloc_cstr("x");
    const Ptr out = mem.alloc(16);
    ok = co_await k.call(c, Fn::CallNamedPipeA, mem.alloc_cstr("\\\\.\\pipe\\no").addr,
                         in.addr, 1, out.addr, 16, 0, 100);
    error = co_await k.call(c, Fn::GetLastError);
  });
  w.m.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(5));
  EXPECT_EQ(ok, 0u);
  EXPECT_EQ(error, to_dword(Win32Error::kFileNotFound));
}

TEST(NamedPipe, NamedObjectsShareAcrossProcesses) {
  // The machine-wide named-object namespace: an event created in one process
  // is opened and signaled from another.
  PipeWorld w;
  Word wait_result = 99;
  w.m.register_program("waiter.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word ev = co_await k.call(c, Fn::CreateEventA, 0, 1, 0,
                                    c.process->mem().alloc_cstr("Global\\Go").addr);
    wait_result = co_await k.call(c, Fn::WaitForSingleObject, ev, 30000);
  });
  w.m.register_program("signaler.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    co_await sleep_in_sim(c, Duration::millis(200));
    const Word ev = co_await k.call(c, Fn::OpenEventA, 0, 0,
                                    c.process->mem().alloc_cstr("Global\\Go").addr);
    EXPECT_NE(ev, 0u);
    (void)co_await k.call(c, Fn::SetEvent, ev);
    co_await sleep_in_sim(c, Duration::seconds(60));  // keep our handle alive
  });
  w.m.start_process("waiter.exe", "waiter.exe");
  w.m.start_process("signaler.exe", "signaler.exe");
  w.run_for(Duration::seconds(10));
  EXPECT_EQ(wait_result, kWaitObject0);
}

}  // namespace
}  // namespace dts::nt
