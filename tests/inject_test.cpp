// Tests for the fault model, fault lists, and the interceptor.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "inject/fault_list.h"
#include "inject/interceptor.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::inject {
namespace {

using nt::Fn;
using nt::Word;

TEST(Fault, CorruptionOperators) {
  EXPECT_EQ(corrupt(0x12345678, FaultType::kZero), 0u);
  EXPECT_EQ(corrupt(0x12345678, FaultType::kOnes), 0xFFFFFFFFu);
  EXPECT_EQ(corrupt(0x12345678, FaultType::kFlip), 0xEDCBA987u);
  EXPECT_EQ(corrupt(0, FaultType::kFlip), 0xFFFFFFFFu);
}

TEST(Fault, IdRoundTrip) {
  FaultSpec f;
  f.target_image = "inetinfo.exe";
  f.fn = Fn::ReadFileEx;
  f.param_index = 2;  // nNumberOfBytesToRead
  f.invocation = 1;
  f.type = FaultType::kZero;
  EXPECT_EQ(f.id(), "ReadFileEx.nNumberOfBytesToRead#1:zero");

  auto parsed = parse_fault_id("inetinfo.exe", f.id());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(Fault, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_fault_id("x", "NotAFunction.arg#1:zero").has_value());
  EXPECT_FALSE(parse_fault_id("x", "ReadFile.noSuchParam#1:zero").has_value());
  EXPECT_FALSE(parse_fault_id("x", "ReadFile.hFile#0:zero").has_value());   // invocation >= 1
  EXPECT_FALSE(parse_fault_id("x", "ReadFile.hFile#1:melt").has_value());   // bad type
  EXPECT_FALSE(parse_fault_id("x", "garbage").has_value());
  EXPECT_FALSE(parse_fault_id("x", "").has_value());
  // Catalogued-but-unimplemented exports are not injectable in runs.
  EXPECT_FALSE(parse_fault_id("x", "CreateNamedPipeA.arg0#1:zero").has_value());
}

TEST(FaultList, FullSweepCoversEveryInjectableParameter) {
  const auto& reg = nt::Kernel32Registry::instance();
  FaultList list = FaultList::full_sweep("x");
  std::size_t expected = 0;
  for (const auto& info : reg.all()) expected += static_cast<std::size_t>(info.param_count()) * 3;
  EXPECT_EQ(list.faults.size(), expected);
  // Zero-parameter functions are excluded (the paper: 130 of 681 functions
  // had no parameters and were not candidates).
  for (const auto& f : list.faults) {
    EXPECT_GT(reg.info(f.fn).param_count(), 0);
  }
}

TEST(FaultList, IterationsAxis) {
  std::set<nt::Fn> fns{Fn::CloseHandle};  // 1 parameter
  FaultList one = FaultList::for_functions("x", fns, 1);
  FaultList three = FaultList::for_functions("x", fns, 3);
  EXPECT_EQ(one.faults.size(), 3u);    // 1 param x 3 types
  EXPECT_EQ(three.faults.size(), 9u);  // x 3 invocations
}

TEST(FaultList, SerializeParseRoundTrip) {
  std::set<nt::Fn> fns{Fn::ReadFile, Fn::SetEvent};
  FaultList list = FaultList::for_functions("apache.exe", fns, 1);
  const std::string text = list.serialize();
  std::string error;
  auto parsed = FaultList::parse("apache.exe", text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->faults.size(), list.faults.size());
  for (std::size_t i = 0; i < list.faults.size(); ++i) {
    EXPECT_EQ(parsed->faults[i], list.faults[i]);
  }
}

TEST(FaultList, ParseReportsBadLines) {
  std::string error;
  EXPECT_FALSE(FaultList::parse("x", "ReadFile.hFile#1:zero\nbogus line\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  // Comments and blanks are fine.
  auto ok = FaultList::parse("x", "# comment\n\nReadFile.hFile#1:zero\n", &error);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->faults.size(), 1u);
}

// ---------------------------------------------------------------- interceptor

struct InjectWorld {
  sim::Simulation simu{5};
  nt::Machine m{simu, nt::MachineConfig{.name = "target", .cpu_scale = 1.0}};
  Interceptor icept;

  InjectWorld() { m.k32().set_hook(&icept); }

  void run_program(const char* image, nt::Machine::ProgramMain fn) {
    m.register_program(image, std::move(fn));
    m.start_process(image, image);
    simu.run_until(simu.now() + sim::Duration::seconds(60));
  }
};

TEST(Interceptor, CountsInvocationsPerImage) {
  InjectWorld w;
  w.run_program("a.exe", [](nt::Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    for (int i = 0; i < 3; ++i) (void)co_await k.call(c, Fn::SetEvent, 0);
    (void)co_await k.call(c, Fn::ResetEvent, 0);
  });
  EXPECT_EQ(w.icept.invocations("a.exe", Fn::SetEvent), 3);
  EXPECT_EQ(w.icept.invocations("a.exe", Fn::ResetEvent), 1);
  EXPECT_EQ(w.icept.invocations("b.exe", Fn::SetEvent), 0);
  EXPECT_TRUE(w.icept.called("a.exe").contains(Fn::SetEvent));
  EXPECT_FALSE(w.icept.called("a.exe").contains(Fn::PulseEvent));
}

TEST(Interceptor, InjectsExactlyOneInvocation) {
  InjectWorld w;
  FaultSpec f;
  f.target_image = "a.exe";
  f.fn = Fn::Sleep;
  f.param_index = 0;
  f.invocation = 2;
  f.type = FaultType::kZero;
  w.icept.arm(f);

  std::vector<sim::TimePoint> stamps;
  w.run_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    for (int i = 0; i < 3; ++i) {
      (void)co_await k.call(c, Fn::Sleep, 1000);  // corrupted to 0 on call #2
      stamps.push_back(c.m().sim().now());
    }
  });
  ASSERT_TRUE(w.icept.injected());
  EXPECT_EQ(w.icept.original_word(), 1000u);
  EXPECT_EQ(w.icept.corrupted_word(), 0u);
  // Sleep #1 and #3 took ~1s; #2 was corrupted to zero.
  ASSERT_EQ(stamps.size(), 3u);
  const auto d2 = stamps[1] - stamps[0];
  EXPECT_LT(d2, sim::Duration::millis(100));
}

TEST(Interceptor, WrongImageNotInjected) {
  InjectWorld w;
  FaultSpec f;
  f.target_image = "other.exe";
  f.fn = Fn::Sleep;
  f.param_index = 0;
  f.invocation = 1;
  f.type = FaultType::kOnes;  // would hang forever if injected
  w.icept.arm(f);

  bool completed = false;
  w.run_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    (void)co_await c.m().k32().call(c, Fn::Sleep, 10);
    completed = true;
  });
  EXPECT_TRUE(completed);
  EXPECT_FALSE(w.icept.injected());
  EXPECT_FALSE(w.icept.target_function_called());
}

TEST(Interceptor, OneShotAcrossProcessInstances) {
  // A respawned process continues the invocation count, and the fault fires
  // at most once per run (paper: "Only one fault is injected for each
  // execution of the server program").
  InjectWorld w;
  FaultSpec f;
  f.target_image = "a.exe";
  f.fn = Fn::SetEvent;
  f.param_index = 0;
  f.invocation = 1;
  f.type = FaultType::kOnes;
  w.icept.arm(f);

  int failures = 0;
  w.m.register_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const nt::Word ev = co_await k.call(c, Fn::CreateEventA, 0, 1, 0, 0);
    if (co_await k.call(c, Fn::SetEvent, ev) == 0) ++failures;
  });
  w.m.start_process("a.exe", "a.exe");
  w.simu.run_until(w.simu.now() + sim::Duration::seconds(5));
  w.m.start_process("a.exe", "a.exe");  // "respawn"
  w.simu.run_until(w.simu.now() + sim::Duration::seconds(5));

  EXPECT_EQ(failures, 1);  // only the first instance saw the corruption
  EXPECT_EQ(w.icept.invocations("a.exe", Fn::SetEvent), 2);
}

TEST(FaultList, SampledEvenSpacingAndBoundaries) {
  const FaultList full = FaultList::full_sweep("a.exe");
  const std::size_t n = full.faults.size();
  ASSERT_GT(n, 16u);

  auto ids = [](const FaultList& l) {
    std::vector<std::string> out;
    for (const auto& f : l.faults) out.push_back(f.id());
    return out;
  };

  // No cap / cap >= size: the list is unchanged.
  EXPECT_EQ(ids(full.sampled(0)), ids(full));
  EXPECT_EQ(ids(full.sampled(n)), ids(full));
  EXPECT_EQ(ids(full.sampled(n + 5)), ids(full));

  // Exact-boundary and interior caps: exactly max entries, all unique, in
  // list order (the even-spacing formula must never repeat an index).
  for (const std::size_t max : {std::size_t{1}, std::size_t{2}, n / 3, n - 2, n - 1}) {
    const FaultList s = full.sampled(max);
    EXPECT_EQ(s.faults.size(), max) << "cap " << max;
    const auto sampled_ids = ids(s);
    const std::set<std::string> unique(sampled_ids.begin(), sampled_ids.end());
    EXPECT_EQ(unique.size(), max) << "duplicate entries at cap " << max;
    // Order preserved: sampled ids appear as a subsequence of the full list.
    std::size_t cursor = 0;
    const auto full_ids = ids(full);
    for (const auto& id : sampled_ids) {
      while (cursor < n && full_ids[cursor] != id) ++cursor;
      ASSERT_LT(cursor, n) << "sampled entry out of order at cap " << max;
      ++cursor;
    }
  }

  // First entry is always the head of the list (anchor of the even spacing).
  EXPECT_EQ(full.sampled(3).faults.front().id(), full.faults.front().id());
}

TEST(Interceptor, PointerCorruptionCrashesTarget) {
  InjectWorld w;
  FaultSpec f;
  f.target_image = "a.exe";
  f.fn = Fn::GetStartupInfoA;
  f.param_index = 0;
  f.invocation = 1;
  f.type = FaultType::kFlip;
  w.icept.arm(f);

  w.run_program("a.exe", [](nt::Ctx c) -> sim::Task {
    Word buf = c.process->mem().alloc(68).addr;
    (void)co_await c.m().k32().call(c, Fn::GetStartupInfoA, buf);
    co_await nt::sleep_in_sim(c, sim::Duration::seconds(1));
  });
  EXPECT_TRUE(w.icept.injected());
  EXPECT_EQ(w.m.crashes_of("a.exe"), 1u);
}

}  // namespace
}  // namespace dts::inject
