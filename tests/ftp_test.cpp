// Tests for the FTP service extension (the IIS capability the paper mentions
// but never measured) and its workload wiring.
#include <gtest/gtest.h>

#include "apps/ftp.h"
#include "apps/iis.h"
#include "core/run.h"
#include "ntsim/kernel.h"
#include "ntsim/scm.h"

namespace dts {
namespace {

using nt::Ctx;
using sim::Duration;

struct FtpWorld {
  sim::Simulation simu{41};
  nt::net::Network net{simu};  // must outlive the machines
  nt::Machine target{simu, nt::MachineConfig{.name = "target", .cpu_scale = 1.0}};
  nt::Machine control{simu, nt::MachineConfig{.name = "control", .cpu_scale = 0.25}};

  void install_iis_with_ftp() {
    apps::IisConfig cfg;
    cfg.enable_ftp = true;
    apps::install_iis(target, net, cfg);
    target.scm().start_service("W3SVC");
  }
  void run_for(Duration d) { simu.run_until(simu.now() + d); }
};

TEST(Ftp, DownloadRoundTrip) {
  FtpWorld w;
  w.install_iis_with_ftp();
  std::optional<std::string> payload;
  w.control.register_program("ftp.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(10));  // let IIS start
    payload = co_await apps::ftp::ftp_fetch(c, &w.net, "target", 21, "download.bin",
                                            Duration::seconds(60));
  });
  w.control.start_process("ftp.exe", "ftp.exe");
  w.run_for(Duration::seconds(120));
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, apps::ftp_download_content());
}

TEST(Ftp, MissingFileIs550) {
  FtpWorld w;
  w.install_iis_with_ftp();
  std::optional<std::string> payload = std::string("sentinel");
  w.control.register_program("ftp.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(10));
    payload = co_await apps::ftp::ftp_fetch(c, &w.net, "target", 21, "nope.bin",
                                            Duration::seconds(60));
  });
  w.control.start_process("ftp.exe", "ftp.exe");
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(payload, std::nullopt);
}

TEST(Ftp, SequentialSessions) {
  // The control listener accepts session after session.
  FtpWorld w;
  w.install_iis_with_ftp();
  int successes = 0;
  w.control.register_program("ftp.exe", [&](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::seconds(10));
    for (int i = 0; i < 3; ++i) {
      auto payload = co_await apps::ftp::ftp_fetch(c, &w.net, "target", 21,
                                                   "readme.txt", Duration::seconds(60));
      if (payload && *payload == "Microsoft FTP Service\n") ++successes;
      co_await nt::sleep_in_sim(c, Duration::seconds(1));
    }
  });
  w.control.start_process("ftp.exe", "ftp.exe");
  w.run_for(Duration::seconds(240));
  EXPECT_EQ(successes, 3);
}

TEST(Ftp, WorkloadFaultFreeIsNormalSuccess) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS-FTP");
  cfg.seed = 3;
  const core::RunResult r = core::execute_run(cfg, std::nullopt);
  EXPECT_EQ(r.outcome, core::Outcome::kNormalSuccess) << r.summary();
}

TEST(Ftp, WorkloadCrashFaultRecoversUnderWatchd) {
  auto spec = inject::parse_fault_id("inetinfo.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS-FTP");
  cfg.seed = 3;

  const core::RunResult standalone = core::execute_run(cfg, *spec);
  EXPECT_EQ(standalone.outcome, core::Outcome::kFailure) << standalone.summary();

  cfg.middleware = mw::MiddlewareKind::kWatchd;
  const core::RunResult watchd = core::execute_run(cfg, *spec);
  EXPECT_NE(watchd.outcome, core::Outcome::kFailure) << watchd.summary();
  EXPECT_GE(watchd.restarts, 1);
}

TEST(Ftp, TruncatedReadYieldsWrongPayloadNotHang) {
  // Corrupting the FTP service's file read (nNumberOfBytesToRead=0 on some
  // invocation along the RETR path) must surface as a failed/retried
  // transfer, never as a wedged run.
  auto spec = inject::parse_fault_id("inetinfo.exe", "ReadFile.nNumberOfBytesToRead#1:zero");
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("IIS-FTP");
  cfg.seed = 3;
  const core::RunResult r = core::execute_run(cfg, *spec);
  EXPECT_TRUE(r.client_finished);
}

}  // namespace
}  // namespace dts
