// Tests for the DTS core: run orchestration, outcome classification,
// campaign mechanics, configuration files, controller/agent protocol.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/report.h"

namespace dts::core {
namespace {

RunConfig quick_config(const char* workload, mw::MiddlewareKind m = mw::MiddlewareKind::kNone,
                       mw::WatchdVersion v = mw::WatchdVersion::kV3) {
  RunConfig cfg;
  cfg.workload = workload_by_name(workload);
  cfg.middleware = m;
  cfg.watchd_version = v;
  cfg.seed = 11;
  return cfg;
}

// ---------------------------------------------------------------- single runs

TEST(Run, FaultFreeIsNormalSuccess) {
  for (const char* w : {"Apache1", "Apache2", "IIS", "SQL"}) {
    RunResult r = execute_run(quick_config(w), std::nullopt);
    EXPECT_EQ(r.outcome, Outcome::kNormalSuccess) << w << ": " << r.summary();
    EXPECT_FALSE(r.activated);
    EXPECT_EQ(r.retries, 0);
    EXPECT_EQ(r.restarts, 0);
    EXPECT_TRUE(r.client_finished);
  }
}

TEST(Run, DeterministicReplay) {
  auto spec = inject::parse_fault_id("inetinfo.exe", "CreateSemaphoreA.lInitialCount#1:ones");
  ASSERT_TRUE(spec.has_value());
  RunResult a = execute_run(quick_config("IIS"), *spec);
  RunResult b = execute_run(quick_config("IIS"), *spec);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.response_time.count_micros(), b.response_time.count_micros());
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.restarts, b.restarts);
}

TEST(Run, InitCrashStandaloneIsFailure) {
  // A corrupted pointer in IIS's early init crashes the process; with no
  // middleware, nobody restarts it and every request is refused.
  auto spec = inject::parse_fault_id("inetinfo.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  RunResult r = execute_run(quick_config("IIS"), *spec);
  EXPECT_TRUE(r.activated);
  EXPECT_EQ(r.outcome, Outcome::kFailure);
  EXPECT_FALSE(r.response_received);
  EXPECT_NE(r.detail.find("access violation"), std::string::npos);
}

TEST(Run, InitCrashWithWatchd3Recovers) {
  auto spec = inject::parse_fault_id("inetinfo.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  RunResult r =
      execute_run(quick_config("IIS", mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV3),
                  *spec);
  EXPECT_TRUE(r.activated);
  EXPECT_NE(r.outcome, Outcome::kFailure) << r.summary();
  EXPECT_GE(r.restarts, 1);
}

TEST(Run, ApacheWorkerCrashIsMaskedByMaster) {
  // Apache2's own architecture recovers worker crashes without middleware.
  auto spec = inject::parse_fault_id("apache_child.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  RunResult r = execute_run(quick_config("Apache2"), *spec);
  EXPECT_TRUE(r.activated);
  EXPECT_NE(r.outcome, Outcome::kFailure) << r.summary();
  EXPECT_EQ(r.restarts, 0);  // not a middleware restart
}

TEST(Run, SqlHungExecutorIsUnrecoverableHang) {
  // Corrupting the executor's queue-event handle hangs SQL Server without
  // killing it: the SCM still says Running, so no restart ever happens and
  // the client times out — failure with no response.
  auto spec = inject::parse_fault_id("sqlservr.exe", "WaitForSingleObject.hHandle#1:flip");
  for (auto m : {mw::MiddlewareKind::kNone, mw::MiddlewareKind::kMscs}) {
    RunResult r = execute_run(quick_config("SQL", m), *spec);
    EXPECT_TRUE(r.activated);
    EXPECT_EQ(r.outcome, Outcome::kFailure) << r.summary();
  }
}

TEST(Run, NotActivatedWhenFunctionUncalled) {
  // Apache1's master never calls ReadFileEx.
  auto spec = inject::parse_fault_id("apache.exe", "ReadFileEx.hFile#1:zero");
  RunResult r = execute_run(quick_config("Apache1"), *spec);
  EXPECT_FALSE(r.activated);
  EXPECT_EQ(r.outcome, Outcome::kNormalSuccess);
}

// ---------------------------------------------------------------- campaign

TEST(Campaign, ProfilesMatchPaperShape) {
  const auto a1 = profile_workload(quick_config("Apache1"));
  const auto a2 = profile_workload(quick_config("Apache2"));
  const auto iis = profile_workload(quick_config("IIS"));
  const auto sql = profile_workload(quick_config("SQL"));
  // Paper Table 1 ordering: Apache1 << Apache2 << SQL/IIS.
  EXPECT_LT(a1.size(), a2.size());
  EXPECT_LT(a2.size(), sql.size());
  EXPECT_LT(sql.size(), iis.size() + 40);  // same ballpark
  EXPECT_GT(iis.size(), 60u);
  EXPECT_LT(a1.size(), 20u);
  // The majority of catalogued KERNEL32 functions are never called (paper §4).
  EXPECT_LT(iis.size(), nt::Kernel32Registry::instance().injectable_functions() / 2);
}

TEST(Campaign, MscsAddsActivatedFunctions) {
  const auto plain = profile_workload(quick_config("Apache1"));
  const auto mscs = profile_workload(quick_config("Apache1", mw::MiddlewareKind::kMscs));
  EXPECT_GT(mscs.size(), plain.size());
}

TEST(Campaign, SmallSweepAccounting) {
  RunConfig cfg = quick_config("Apache1");
  CampaignOptions opt;
  opt.seed = 3;
  opt.max_faults = 30;
  WorkloadSetResult r = run_workload_set(cfg, opt);
  EXPECT_EQ(r.runs.size(), 30u);
  EXPECT_GT(r.activated_faults(), 0u);
  EXPECT_LE(r.activated_faults(), r.runs.size());
  // Percentages over activated faults sum to 100.
  double total = 0;
  for (Outcome o : kAllOutcomes) total += r.percent(o);
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_EQ(r.label(), "Apache1/none");
}

TEST(Campaign, ProgressCallbackFires) {
  RunConfig cfg = quick_config("Apache1");
  CampaignOptions opt;
  opt.max_faults = 5;
  std::size_t calls = 0, last_total = 0;
  opt.on_progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_LE(done, total);
    last_total = total;
  };
  run_workload_set(cfg, opt);
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(last_total, 5u);
}

// ---------------------------------------------------------------- reports

TEST(Report, FaultKeyIgnoresImage) {
  auto a = inject::parse_fault_id("apache.exe", "ReadFile.hFile#1:zero");
  auto b = inject::parse_fault_id("inetinfo.exe", "ReadFile.hFile#1:zero");
  EXPECT_EQ(fault_key(*a), fault_key(*b));
  auto c = inject::parse_fault_id("apache.exe", "ReadFile.hFile#1:ones");
  EXPECT_NE(fault_key(*a), fault_key(*c));
}

TEST(Report, RendersTables) {
  RunConfig cfg = quick_config("Apache1");
  CampaignOptions opt;
  opt.max_faults = 12;
  std::vector<WorkloadSetResult> sets;
  sets.push_back(run_workload_set(cfg, opt));
  const std::string t1 = table1_activated_functions(sets);
  EXPECT_NE(t1.find("Apache1"), std::string::npos);
  const std::string f2 = fig2_outcome_table(sets);
  EXPECT_NE(f2.find("Apache1/none"), std::string::npos);
  EXPECT_NE(f2.find("Failure"), std::string::npos);
  const std::string csv = runs_csv(sets[0]);
  EXPECT_NE(csv.find("workload,middleware,fault"), std::string::npos);
  // One CSV line per run plus header.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            sets[0].runs.size() + 1);
}

// ---------------------------------------------------------------- config

TEST(Config, ParsesFullFile) {
  const std::string text = R"(
; DTS main configuration
[test]
workload = SQL
middleware = watchd
watchd_version = 2
seed = 99
iterations = 2
max_faults = 10

[client]
response_timeout_s = 20
retry_wait_s = 10
max_attempts = 2
server_up_timeout_s = 60

[machine]
target_cpu_scale = 0.25
run_timeout_s = 200
)";
  std::string error;
  auto cfg = parse_config(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->run.workload.name, "SQL");
  EXPECT_EQ(cfg->run.middleware, mw::MiddlewareKind::kWatchd);
  EXPECT_EQ(cfg->run.watchd_version, mw::WatchdVersion::kV2);
  EXPECT_EQ(cfg->campaign.seed, 99u);
  EXPECT_EQ(cfg->campaign.iterations, 2);
  EXPECT_EQ(cfg->campaign.max_faults, 10u);
  EXPECT_EQ(cfg->run.client.response_timeout, sim::Duration::seconds(20));
  EXPECT_EQ(cfg->run.client.max_attempts, 2);
  EXPECT_DOUBLE_EQ(cfg->run.target_cpu_scale, 0.25);
}

TEST(Config, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(parse_config("[test]\nworkload = Netscape\n", &error));
  EXPECT_FALSE(parse_config("[test]\nmiddleware = prayer\n", &error));
  EXPECT_FALSE(parse_config("[test]\nwatchd_version = 9\n", &error));
  EXPECT_FALSE(parse_config("[bogus]\nx = 1\n", &error));
  EXPECT_FALSE(parse_config("[test]\nunknown_key = 1\n", &error));
  EXPECT_FALSE(parse_config("key_outside_section = 1\n", &error));
  EXPECT_FALSE(parse_config("[client]\nmax_attempts = 0\n", &error));
  EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(Config, MachineExtras) {
  std::string error;
  auto cfg = parse_config(
      "[machine]\ntarget_jitter = 0.05\napache_children = 3\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_DOUBLE_EQ(cfg->run.target_jitter, 0.05);
  EXPECT_EQ(cfg->run.apache.max_children, 3);
  EXPECT_FALSE(parse_config("[machine]\ntarget_jitter = 2\n", &error));
  EXPECT_FALSE(parse_config("[machine]\napache_children = 0\n", &error));
}

TEST(Config, MiddlewareSection) {
  const std::string text = R"(
[test]
workload = IIS
middleware = mscs

[middleware]
mscs_poll_interval_s = 3
mscs_pending_timeout_s = 30
mscs_restart_threshold = 5
watchd_heartbeat = 1
)";
  std::string error;
  auto cfg = parse_config(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->run.mscs.poll_interval, sim::Duration::seconds(3));
  EXPECT_EQ(cfg->run.mscs.pending_timeout, sim::Duration::seconds(30));
  EXPECT_EQ(cfg->run.mscs.restart_threshold, 5);
  EXPECT_TRUE(cfg->run.watchd.heartbeat);
  EXPECT_FALSE(parse_config("[middleware]\nwatchd_heartbeat = 7\n", &error));
  EXPECT_FALSE(parse_config("[middleware]\nbogus = 1\n", &error));
}

TEST(Run, TraceRecordsInjectedCall) {
  RunConfig cfg = quick_config("Apache1");
  cfg.trace_limit = 64;
  auto spec = inject::parse_fault_id("apache.exe", "GetPrivateProfileStringA.lpFileName#1:flip");
  FaultInjectionRun run(cfg);
  const RunResult r = run.execute(*spec);
  EXPECT_TRUE(r.activated);
  const auto& trace = run.interceptor().trace();
  ASSERT_FALSE(trace.empty());
  bool saw_injection = false;
  for (const auto& entry : trace) {
    if (entry.injected_here) {
      saw_injection = true;
      EXPECT_EQ(entry.fn, nt::Fn::GetPrivateProfileStringA);
      EXPECT_NE(entry.to_string().find("FAULT INJECTED"), std::string::npos);
      // The trace shows the corrupted word the kernel received.
      EXPECT_EQ(entry.args[5], run.interceptor().corrupted_word());
    }
  }
  EXPECT_TRUE(saw_injection);
}

TEST(Config, SerializeRoundTrips) {
  DtsConfig cfg;
  cfg.run = quick_config("Apache2", mw::MiddlewareKind::kWatchd, mw::WatchdVersion::kV1);
  cfg.campaign.seed = 5;
  cfg.campaign.iterations = 3;
  std::string error;
  auto reparsed = parse_config(serialize_config(cfg), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->run.workload.name, "Apache2");
  EXPECT_EQ(reparsed->run.watchd_version, mw::WatchdVersion::kV1);
  EXPECT_EQ(reparsed->campaign.iterations, 3);
}

// ---------------------------------------------------------------- controller

TEST(Controller, ProfileAndRunOverTransport) {
  auto pair = make_in_process_transport();
  TargetAgent agent(quick_config("Apache1"), *pair.agent_end);
  Controller controller(*pair.controller_end);

  const auto fns = controller.profile();
  EXPECT_GT(fns.size(), 5u);
  EXPECT_TRUE(fns.contains("CreateProcessA"));

  auto spec = inject::parse_fault_id("apache.exe", "GetStartupInfoA.lpStartupInfo#1:flip");
  RunResult r = controller.run_fault(*spec);
  EXPECT_TRUE(r.activated);
  EXPECT_EQ(controller.protocol_errors(), 0);
  EXPECT_EQ(r.fault, *spec);
}

TEST(Controller, ResultEncodingRoundTrip) {
  RunResult r;
  r.fault = *inject::parse_fault_id("x.exe", "ReadFile.hFile#1:flip");
  r.activated = true;
  r.outcome = Outcome::kRestartRetrySuccess;
  r.response_received = true;
  r.response_time = sim::Duration::millis(14210);
  r.restarts = 2;
  r.retries = 1;
  auto decoded = decode_run_result(encode_run_result(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->outcome, r.outcome);
  EXPECT_EQ(decoded->response_time.count_micros(), r.response_time.count_micros());
  EXPECT_EQ(decoded->restarts, 2);
  EXPECT_EQ(decoded->retries, 1);
  EXPECT_TRUE(decoded->activated);
  EXPECT_TRUE(decoded->response_received);

  EXPECT_FALSE(decode_run_result("garbage").has_value());
  EXPECT_FALSE(decode_run_result("RESULT outcome=sideways").has_value());
}

}  // namespace
}  // namespace dts::core
