// Edge cases of the process/thread substrate: ExitThread/ExitProcess
// semantics, nested process trees, teardown during blocking I/O, and service
// coexistence (HTTP+FTP+gopher in one inetinfo.exe).
#include <gtest/gtest.h>

#include "apps/iis.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace dts::nt {
namespace {

using sim::Duration;

struct EdgeWorld {
  sim::Simulation simu{55};
  net::Network net{simu};
  Machine m{simu, MachineConfig{.name = "target"}};
  void run_for(Duration d) { simu.run_until(simu.now() + d); }
};

TEST(ProcessEdge, ExitThreadEndsOnlyThatThread) {
  EdgeWorld w;
  bool worker_after = false, main_after = false;
  w.m.register_program("t.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word routine = c.process->register_routine([&](Ctx tc, Word) -> sim::Task {
      (void)co_await tc.m().k32().call(tc, Fn::ExitThread, 0);
      worker_after = true;  // unreachable
    });
    const Word h = co_await k.call(c, Fn::CreateThread, 0, 0, routine, 0, 0, 0);
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, h, 5000), kWaitObject0);
    main_after = true;
    co_await sleep_in_sim(c, Duration::millis(100));
  });
  const Pid pid = w.m.start_process("t.exe", "t.exe");
  w.run_for(Duration::seconds(30));
  EXPECT_FALSE(worker_after);
  EXPECT_TRUE(main_after);
  EXPECT_FALSE(w.m.alive(pid));  // main returned afterwards: process done
  EXPECT_EQ(w.m.exit_history().back().exit_code, 0u);
}

TEST(ProcessEdge, ExitProcessStopsAllThreads) {
  EdgeWorld w;
  int worker_ticks = 0;
  w.m.register_program("t.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word routine = c.process->register_routine([&](Ctx tc, Word) -> sim::Task {
      for (;;) {
        co_await sleep_in_sim(tc, Duration::millis(100));
        ++worker_ticks;
      }
    });
    (void)co_await k.call(c, Fn::CreateThread, 0, 0, routine, 0, 0, 0);
    co_await sleep_in_sim(c, Duration::millis(550));
    (void)co_await k.call(c, Fn::ExitProcess, 9);
    ADD_FAILURE() << "ExitProcess returned";
  });
  const Pid pid = w.m.start_process("t.exe", "t.exe");
  w.run_for(Duration::seconds(30));
  EXPECT_FALSE(w.m.alive(pid));
  EXPECT_EQ(w.m.exit_history().back().exit_code, 9u);
  const int ticks_at_exit = worker_ticks;
  w.run_for(Duration::seconds(5));
  EXPECT_EQ(worker_ticks, ticks_at_exit);  // the worker thread died too
}

TEST(ProcessEdge, GrandchildSurvivesParentDeath) {
  // NT has no process-tree kill: a grandchild keeps running when the middle
  // process dies (the mechanism behind Apache's worker surviving a master
  // crash).
  EdgeWorld w;
  int grandchild_ticks = 0;
  w.m.register_program("grandchild.exe", [&](Ctx c) -> sim::Task {
    for (;;) {
      co_await sleep_in_sim(c, Duration::millis(200));
      ++grandchild_ticks;
    }
  });
  w.m.register_program("child.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Ptr cmd = c.process->mem().alloc_cstr("grandchild.exe");
    const Ptr pi = c.process->mem().alloc(16);
    (void)co_await k.call(c, Fn::CreateProcessA, 0, cmd.addr, 0, 0, 0, 0, 0, 0, 0,
                          pi.addr);
    co_await sleep_in_sim(c, Duration::millis(300));
    throw AccessViolation{0xBAD, false};  // die; grandchild lives on
  });
  w.m.register_program("root.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Ptr cmd = c.process->mem().alloc_cstr("child.exe");
    const Ptr pi = c.process->mem().alloc(16);
    (void)co_await k.call(c, Fn::CreateProcessA, 0, cmd.addr, 0, 0, 0, 0, 0, 0, 0,
                          pi.addr);
    co_await sleep_in_sim(c, Duration::seconds(60));
  });
  w.m.start_process("root.exe", "root.exe");
  w.run_for(Duration::seconds(5));
  EXPECT_EQ(w.m.crashes_of("child.exe"), 1u);
  EXPECT_NE(w.m.find_process_by_image("grandchild.exe"), nullptr);
  EXPECT_GT(grandchild_ticks, 10);
}

TEST(ProcessEdge, KillDuringBlockingReadIsClean) {
  // Teardown while a thread is blocked inside ReadFile on a pipe: the wake
  // token goes dead, the frame is destroyed, nothing dangles.
  EdgeWorld w;
  Pid pid = 0;
  w.m.register_program("t.exe", [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    const Ptr handles = mem.alloc(8);
    (void)co_await k.call(c, Fn::CreatePipe, handles.addr, handles.addr + 4, 0, 0);
    const Word h_read = mem.read_u32(handles);
    const Ptr buf = mem.alloc(16);
    // Blocks forever: nobody writes.
    (void)co_await k.call(c, Fn::ReadFile, h_read, buf.addr, 16, 0, 0);
    ADD_FAILURE() << "read returned";
  });
  pid = w.m.start_process("t.exe", "t.exe");
  w.run_for(Duration::seconds(1));
  EXPECT_TRUE(w.m.alive(pid));
  w.m.request_process_exit(pid, kExitCodeTerminated, "test kill");
  w.run_for(Duration::seconds(1));
  EXPECT_FALSE(w.m.alive(pid));
  // The machine keeps working afterwards.
  bool ran = false;
  w.m.register_program("after.exe", [&](Ctx c) -> sim::Task {
    (void)co_await c.m().k32().call(c, Fn::GetTickCount);
    ran = true;
  });
  w.m.start_process("after.exe", "after.exe");
  w.run_for(Duration::seconds(1));
  EXPECT_TRUE(ran);
}

TEST(ProcessEdge, AllThreeIisProtocolsCoexist) {
  EdgeWorld w;
  Machine control{w.simu, MachineConfig{.name = "control"}};
  apps::IisConfig cfg;
  cfg.enable_ftp = true;
  cfg.enable_gopher = true;
  const std::string index = apps::install_iis(w.m, w.net, cfg);
  w.m.scm().start_service("W3SVC");

  bool http_ok = false, gopher_ok = false;
  control.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::seconds(10));
    {
      auto sock = co_await w.net.connect(c, "target", 80);
      if (sock != nullptr) {
        sock->send("GET /index.html HTTP/1.0\r\n\r\n");
        auto first = co_await sock->recv(c, 64, Duration::seconds(30));
        http_ok = first.has_value() && first->rfind("HTTP/1.0 200", 0) == 0;
      }
    }
    {
      auto sock = co_await w.net.connect(c, "target", 70);
      if (sock != nullptr) {
        sock->send("about.txt\r\n");
        auto reply = co_await sock->recv(c, 256, Duration::seconds(30));
        gopher_ok = reply.has_value() &&
                    reply->find("Microsoft Gopher Service") != std::string::npos;
      }
    }
  });
  control.start_process("client.exe", "client.exe");
  w.run_for(Duration::seconds(120));
  EXPECT_TRUE(http_ok);
  EXPECT_TRUE(gopher_ok);
  EXPECT_TRUE(w.net.port_open("target", 21));  // FTP is listening too
}

}  // namespace
}  // namespace dts::nt
