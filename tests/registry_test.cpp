// Tests for the simulated NT registry and its SCM integration.
#include <gtest/gtest.h>

#include "ntsim/kernel.h"
#include "ntsim/registry.h"
#include "ntsim/scm.h"

namespace dts::nt {
namespace {

TEST(Registry, NormalizeKeys) {
  EXPECT_EQ(Registry::normalize_key("HKLM\\SOFTWARE\\Test"), "HKLM\\SOFTWARE\\Test");
  EXPECT_EQ(Registry::normalize_key("\\HKLM\\\\SOFTWARE\\"), "HKLM\\SOFTWARE");
  EXPECT_EQ(Registry::normalize_key(""), std::nullopt);
  EXPECT_EQ(Registry::normalize_key("\\\\\\"), std::nullopt);
}

TEST(Registry, StringAndDwordValues) {
  Registry reg;
  EXPECT_TRUE(reg.set_string("HKLM\\Software\\App", "Path", "C:\\App"));
  EXPECT_TRUE(reg.set_dword("HKLM\\Software\\App", "Port", 8080));
  EXPECT_EQ(reg.get_string("hklm\\software\\app", "path"), "C:\\App");  // case-insensitive
  EXPECT_EQ(reg.get_dword("HKLM\\Software\\App", "Port"), 8080u);
  // Type mismatch reads return nullopt.
  EXPECT_EQ(reg.get_dword("HKLM\\Software\\App", "Path"), std::nullopt);
  EXPECT_EQ(reg.get_string("HKLM\\Software\\App", "Port"), std::nullopt);
  // Missing value / missing key.
  EXPECT_EQ(reg.get_string("HKLM\\Software\\App", "Nope"), std::nullopt);
  EXPECT_EQ(reg.get_string("HKLM\\Software\\Other", "Path"), std::nullopt);
}

TEST(Registry, CreateKeyCreatesParents) {
  Registry reg;
  EXPECT_TRUE(reg.create_key("HKLM\\A\\B\\C"));
  EXPECT_TRUE(reg.key_exists("HKLM\\A"));
  EXPECT_TRUE(reg.key_exists("HKLM\\A\\B"));
  EXPECT_TRUE(reg.key_exists("hklm\\a\\b\\c"));
  EXPECT_FALSE(reg.key_exists("HKLM\\A\\B\\C\\D"));
}

TEST(Registry, SubkeysAndValueNames) {
  Registry reg;
  reg.set_dword("HKLM\\Svc\\Alpha", "Start", 2);
  reg.set_dword("HKLM\\Svc\\Beta", "Start", 3);
  reg.set_string("HKLM\\Svc\\Alpha", "ImagePath", "a.exe");
  reg.create_key("HKLM\\Svc\\Alpha\\Parameters");
  EXPECT_EQ(reg.subkeys("HKLM\\Svc"), (std::vector<std::string>{"Alpha", "Beta"}));
  EXPECT_EQ(reg.subkeys("HKLM\\Svc\\Alpha"), (std::vector<std::string>{"Parameters"}));
  EXPECT_EQ(reg.value_names("HKLM\\Svc\\Alpha"),
            (std::vector<std::string>{"ImagePath", "Start"}));
}

TEST(Registry, DeleteValueAndKeyRecursively) {
  Registry reg;
  reg.set_string("HKLM\\X\\Y", "v", "1");
  reg.set_string("HKLM\\X\\Y\\Z", "w", "2");
  EXPECT_TRUE(reg.delete_value("HKLM\\X\\Y", "v"));
  EXPECT_FALSE(reg.delete_value("HKLM\\X\\Y", "v"));
  EXPECT_TRUE(reg.delete_key("HKLM\\X\\Y"));
  EXPECT_FALSE(reg.key_exists("HKLM\\X\\Y"));
  EXPECT_FALSE(reg.key_exists("HKLM\\X\\Y\\Z"));  // recursive delete
  EXPECT_TRUE(reg.key_exists("HKLM\\X"));
  EXPECT_FALSE(reg.delete_key("HKLM\\X\\Y"));
}

TEST(Registry, OverwriteValue) {
  Registry reg;
  reg.set_string("HKLM\\K", "v", "old");
  reg.set_string("HKLM\\K", "v", "new");
  EXPECT_EQ(reg.get_string("HKLM\\K", "v"), "new");
  // A dword can replace a string under the same name.
  reg.set_dword("HKLM\\K", "v", 7);
  EXPECT_EQ(reg.get_dword("HKLM\\K", "v"), 7u);
}

TEST(Registry, ScmMirrorsServiceDatabase) {
  sim::Simulation simu{1};
  Machine m{simu, MachineConfig{.name = "target"}};
  m.scm().register_service(ServiceConfig{
      .name = "W3SVC",
      .image = "inetinfo.exe",
      .command_line = "inetinfo.exe",
      .start_wait_hint = sim::Duration::seconds(10),
  });
  const std::string key = "HKLM\\SYSTEM\\CurrentControlSet\\Services\\W3SVC";
  EXPECT_EQ(m.registry().get_string(key, "ImagePath"), "inetinfo.exe");
  EXPECT_EQ(m.registry().get_dword(key, "Start"), 2u);
  EXPECT_EQ(m.registry().get_dword(key, "WaitHint"), 10000u);

  // Middleware switches propagate into the registry mirror.
  m.scm().append_service_switch("W3SVC", "/cluster");
  EXPECT_EQ(m.registry().get_string(key, "CommandLine"), "inetinfo.exe /cluster");
  // The services key lists the service.
  const auto services = m.registry().subkeys("HKLM\\SYSTEM\\CurrentControlSet\\Services");
  EXPECT_EQ(services, (std::vector<std::string>{"W3SVC"}));
}

}  // namespace
}  // namespace dts::nt
