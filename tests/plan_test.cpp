// Tests for the campaign planner (src/plan/): golden-run profiling, the
// plan-cache file, pruning soundness (planned and exhaustive sweeps must
// agree on every aggregate the paper tables read), adaptive-sampling
// determinism, and resume interop. Labelled `plan` in CTest (the target of
// the AddressSanitizer preset: cmake --preset asan && ctest -L plan).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "exec/executor.h"
#include "plan/plan.h"
#include "plan/profiler.h"
#include "plan/pruner.h"
#include "plan/sampler.h"
#include "sim/rng.h"

namespace dts {
namespace {

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kNone;
  return cfg;
}

plan::Plan build_apache_plan(std::uint64_t seed = 1) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = seed;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  return core::build_campaign_plan(cfg, opt);
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Plan, GoldenProfileMatchesCampaignProfilingPass) {
  const core::RunConfig cfg = apache_config();
  const plan::GoldenProfile profile = plan::golden_profile(cfg, /*campaign_seed=*/1,
                                                           /*max_invocations=*/1);
  // Same seed derivation as profile_workload → the same activated set, which
  // is what makes plan-restricted sweeps equivalent to profile-restricted
  // ones.
  EXPECT_EQ(profile.activated, core::profile_workload(cfg, 1));
  EXPECT_FALSE(profile.activated.empty());

  for (nt::Fn fn : profile.activated) {
    ASSERT_TRUE(profile.invocation_counts.contains(fn)) << nt::to_string(fn);
    EXPECT_GE(profile.invocation_counts.at(fn), 1) << nt::to_string(fn);
    ASSERT_TRUE(profile.calls.contains(fn)) << nt::to_string(fn);
    const auto& calls = profile.calls.at(fn);
    ASSERT_FALSE(calls.empty());
    // The capture window was 1 invocation.
    EXPECT_EQ(calls.size(), 1u);
    EXPECT_GT(calls[0].call_site, 0u);
    EXPECT_GE(calls[0].argc, 1);
  }

  // Determinism: the golden run is a fixed world — same seed, same profile.
  const plan::GoldenProfile again = plan::golden_profile(cfg, 1, 1);
  EXPECT_EQ(profile.activated, again.activated);
  EXPECT_EQ(profile.invocation_counts, again.invocation_counts);
  for (const auto& [fn, calls] : profile.calls) {
    const auto& other = again.calls.at(fn);
    ASSERT_EQ(calls.size(), other.size());
    for (std::size_t i = 0; i < calls.size(); ++i) {
      EXPECT_EQ(calls[i].call_site, other[i].call_site);
      EXPECT_EQ(calls[i].args, other[i].args);
    }
  }
}

TEST(Plan, EveryFaultOfTheSweepAppearsExactlyOnceWithAReason) {
  const core::RunConfig cfg = apache_config();
  const plan::Plan p = build_apache_plan();
  const inject::FaultList sweep =
      inject::FaultList::full_sweep(cfg.workload.target_image, 1);

  // Nothing silently dropped: the plan is the sweep, entry for entry.
  ASSERT_EQ(p.entries.size(), sweep.faults.size());
  for (std::size_t i = 0; i < sweep.faults.size(); ++i) {
    EXPECT_EQ(p.entries[i].fault, sweep.faults[i]);
  }
  EXPECT_EQ(p.executable_count() + p.duplicate_count() + p.pruned_count(),
            p.entries.size());

  // Every pruned entry carries a machine-readable reason; every duplicate
  // points at an earlier executable representative with the same corrupted
  // word at the same injection point.
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    const plan::PlanEntry& e = p.entries[i];
    if (e.disposition == plan::Disposition::kPruned) {
      EXPECT_NE(plan::to_string(e.reason), "?");
      if (e.reason == plan::PruneReason::kInertCorruption) {
        ASSERT_TRUE(e.golden_known);
        EXPECT_EQ(inject::corrupt(e.golden_value, e.fault.type), e.golden_value);
      }
    } else if (e.disposition == plan::Disposition::kDuplicate) {
      ASSERT_LT(e.duplicate_of, i);
      const plan::PlanEntry& rep = p.entries[e.duplicate_of];
      EXPECT_EQ(rep.disposition, plan::Disposition::kExecute);
      EXPECT_EQ(rep.fault.fn, e.fault.fn);
      EXPECT_EQ(rep.fault.param_index, e.fault.param_index);
      EXPECT_EQ(rep.fault.invocation, e.fault.invocation);
      ASSERT_TRUE(rep.golden_known);
      ASSERT_TRUE(e.golden_known);
      EXPECT_EQ(inject::corrupt(rep.golden_value, rep.fault.type),
                inject::corrupt(e.golden_value, e.fault.type));
    }
  }
}

TEST(Plan, PlanCacheRoundTrip) {
  const plan::Plan p = build_apache_plan();
  const std::string text = p.serialize();

  std::string error;
  const auto reloaded = plan::Plan::parse(text, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(*reloaded, p);
  // Serialization is canonical: round-tripping reproduces the bytes.
  EXPECT_EQ(reloaded->serialize(), text);
}

TEST(Plan, ParseRejectsMalformedPlans) {
  std::string error;
  EXPECT_FALSE(plan::Plan::parse("", &error).has_value());
  EXPECT_FALSE(plan::Plan::parse("{\"not_a_plan\":1}\n", &error).has_value());

  const plan::Plan p = build_apache_plan();
  const std::string text = p.serialize();
  // Truncation is detected via the header's promised entry count.
  const std::string truncated = text.substr(0, text.rfind('\n', text.size() - 2) + 1);
  EXPECT_FALSE(plan::Plan::parse(truncated, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(Plan, LoadedPlanValidatesAgainstTheCampaign) {
  const plan::Plan p = build_apache_plan(/*seed=*/1);
  const core::RunConfig cfg = apache_config();
  EXPECT_EQ(plan::validate_plan(p, cfg, 1, 1), "");
  EXPECT_NE(plan::validate_plan(p, cfg, /*campaign_seed=*/2, 1), "");
  core::RunConfig other = cfg;
  other.middleware = mw::MiddlewareKind::kWatchd;
  EXPECT_NE(plan::validate_plan(p, other, 1, 1), "");
}

// The tentpole acceptance test: on the seed Apache workload the planned
// campaign must execute at least 25% fewer runs than the exhaustive sweep
// while reproducing the aggregate outcome counts exactly — pruning and
// deduplication are outcome-neutral.
TEST(Plan, PrunedSweepReproducesExhaustiveOutcomeCountsOnApache) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 1;

  const core::WorkloadSetResult exhaustive = core::run_workload_set(cfg, opt);

  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  const core::WorkloadSetResult planned = core::run_workload_set(cfg, opt);

  EXPECT_EQ(planned.activated_functions, exhaustive.activated_functions);
  EXPECT_EQ(planned.outcome_counts(), exhaustive.outcome_counts());
  EXPECT_EQ(planned.activated_faults(), exhaustive.activated_faults());
  EXPECT_EQ(planned.failures_with_response(), exhaustive.failures_with_response());
  EXPECT_EQ(planned.failures_without_response(), exhaustive.failures_without_response());

  ASSERT_TRUE(planned.plan_digest.has_value());
  EXPECT_GT(exhaustive.executed_runs, 0u);
  EXPECT_LE(planned.executed_runs,
            exhaustive.executed_runs - exhaustive.executed_runs / 4)
      << "planned campaign must save >= 25% of the executed runs";
}

// Satellite regression: a corruption that leaves the parameter word unchanged
// must not count as activated — it would inflate the paper-table
// denominators. Pins the Apache1/none denominator the tables divide by.
TEST(Plan, InertCorruptionIsNotCountedAsActivated) {
  const plan::Plan p = build_apache_plan();

  // Find an inert fault the planner identified and execute it for real: the
  // injector fires, but the run must classify as non-activated.
  const plan::PlanEntry* inert = nullptr;
  for (const auto& e : p.entries) {
    if (e.disposition == plan::Disposition::kPruned &&
        e.reason == plan::PruneReason::kInertCorruption) {
      inert = &e;
      break;
    }
  }
  ASSERT_NE(inert, nullptr) << "Apache1 sweep is expected to contain inert faults";

  core::RunConfig single = apache_config();
  single.seed = sim::Rng::mix(1, sim::Rng::hash(inert->fault.id()));
  const core::RunResult r = core::execute_run(single, inert->fault);
  EXPECT_FALSE(r.activated) << inert->fault.id();
  EXPECT_EQ(r.outcome, core::Outcome::kNormalSuccess);

  // The denominator the paper tables divide by: activated faults only. 22
  // inert corruptions exist in the 153-fault reachable sweep, so the
  // denominator is pinned well below the run count.
  core::CampaignOptions opt;
  opt.seed = 1;
  const core::WorkloadSetResult set = core::run_workload_set(apache_config(), opt);
  EXPECT_EQ(set.activated_faults(), 131u);
  EXPECT_EQ(set.activated_faults() + 22u,
            static_cast<std::size_t>(
                std::count_if(set.runs.begin(), set.runs.end(),
                              [](const core::RunResult& run) {
                                return run.detail.find("skipped") == std::string::npos;
                              })));
}

TEST(Plan, AdaptiveSamplingIsDeterministicAcrossJobs) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 1;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  // Apache strata are small, so pick a half-width the homogeneous strata can
  // actually reach: two all-success trials give a Wilson half-width of 0.33
  // (stop), while a 1-in-2 failure split stays at 0.40 (keep sampling).
  opt.plan.ci_half_width = 0.35;
  opt.plan.min_stratum_trials = 2;
  opt.plan.batch = 1;

  opt.jobs = 1;
  const core::WorkloadSetResult serial = core::run_workload_set(cfg, opt);
  opt.jobs = 4;
  const core::WorkloadSetResult parallel = core::run_workload_set(cfg, opt);

  // The executed-run set (hence every record) is schedule-independent: batch
  // composition only depends on fully-recorded earlier rounds.
  EXPECT_EQ(core::serialize_workload_set(serial), core::serialize_workload_set(parallel));
  ASSERT_TRUE(serial.plan_digest.has_value());
  ASSERT_TRUE(parallel.plan_digest.has_value());
  EXPECT_EQ(serial.plan_digest->unsampled, parallel.plan_digest->unsampled);
  EXPECT_EQ(serial.executed_runs, parallel.executed_runs);

  // Early stopping must actually engage at this half-width (Apache1 strata
  // are small but the success-heavy ones converge quickly).
  EXPECT_GT(serial.plan_digest->unsampled, 0u);

  // Per-stratum accounting is consistent.
  for (std::size_t i = 0; i < serial.plan_digest->strata.size(); ++i) {
    const plan::StratumProgress& a = serial.plan_digest->strata[i];
    const plan::StratumProgress& b = parallel.plan_digest->strata[i];
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.stopped_early, b.stopped_early);
  }
}

TEST(Plan, PlannedCampaignResumesFromTruncatedJournal) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 1;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  opt.max_faults = 600;  // keep the sweep (and journal) small

  const std::string journal = temp_path("plan_resume.jsonl");
  std::filesystem::remove(journal);
  opt.journal_path = journal;
  const core::WorkloadSetResult full = core::run_workload_set(cfg, opt);
  ASSERT_TRUE(full.plan_digest.has_value());
  ASSERT_GT(full.executed_runs, 4u);

  // Simulate an interrupted campaign: keep the header and the first half of
  // the records.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 3u);
  const std::size_t keep = 1 + (lines.size() - 1) / 2;
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
  }

  opt.resume = true;
  const core::WorkloadSetResult resumed = core::run_workload_set(cfg, opt);
  ASSERT_TRUE(resumed.plan_digest.has_value());
  EXPECT_EQ(resumed.plan_digest->reused, keep - 1);
  EXPECT_EQ(resumed.executed_runs, full.executed_runs - (keep - 1));
  EXPECT_EQ(core::serialize_workload_set(resumed), core::serialize_workload_set(full));
}

// The sharper variant of the interrupted-campaign shape: only the FINAL
// record is torn, mid-line (the process died inside its last journal
// write). Resume must re-execute exactly that one run.
TEST(Plan, FinalRecordTruncatedMidLineReexecutesOnlyThatRun) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 1;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  opt.max_faults = 600;

  const std::string journal = temp_path("plan_torn_final.jsonl");
  std::filesystem::remove(journal);
  opt.journal_path = journal;
  const core::WorkloadSetResult full = core::run_workload_set(cfg, opt);
  ASSERT_GT(full.executed_runs, 1u);

  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
    out << lines.back().substr(0, lines.back().size() / 2);  // torn, no newline
  }

  opt.resume = true;
  const core::WorkloadSetResult resumed = core::run_workload_set(cfg, opt);
  ASSERT_TRUE(resumed.plan_digest.has_value());
  EXPECT_EQ(resumed.plan_digest->reused, full.executed_runs - 1);
  EXPECT_EQ(resumed.executed_runs, 1u);
  EXPECT_EQ(core::serialize_workload_set(resumed), core::serialize_workload_set(full));
}

TEST(Plan, ExhaustiveJournalRefusesToResumeAPlannedCampaign) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 1;
  opt.max_faults = 300;

  const std::string journal = temp_path("plan_cross_resume.jsonl");
  std::filesystem::remove(journal);
  opt.journal_path = journal;
  (void)core::run_workload_set(cfg, opt);  // exhaustive journal on disk

  // A planned campaign keys its journal on the raw sweep size, which never
  // matches the profile-restricted exhaustive count — resuming across modes
  // must fail loudly instead of silently mixing records.
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  opt.resume = true;
  EXPECT_THROW((void)core::run_workload_set(cfg, opt), std::runtime_error);
}

// `--exhaustive` (mode kExhaustive) is the pre-planner code path, bit for
// bit: same campaign file, same journal records (modulo the wall-clock
// timing field, the only nondeterministic byte in a record).
TEST(Plan, ExhaustiveModeReproducesDefaultJournalByteForByte) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 9;
  opt.max_faults = 120;

  const std::string j1 = temp_path("plan_exh1.jsonl");
  const std::string j2 = temp_path("plan_exh2.jsonl");
  std::filesystem::remove(j1);
  std::filesystem::remove(j2);

  opt.journal_path = j1;
  const std::string out1 = core::serialize_workload_set(core::run_workload_set(cfg, opt));

  opt.plan.mode = plan::PlanOptions::Mode::kExhaustive;  // explicit --exhaustive
  opt.journal_path = j2;
  const std::string out2 = core::serialize_workload_set(core::run_workload_set(cfg, opt));

  EXPECT_EQ(out1, out2);
  auto slurp_without_wall_clock = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find(",\"wall_us\":");
      if (pos != std::string::npos) {
        const auto end = line.find_first_of(",}", pos + 11);
        line.erase(pos, end - pos);
      }
      buf << line << "\n";
    }
    return buf.str();
  };
  EXPECT_EQ(slurp_without_wall_clock(j1), slurp_without_wall_clock(j2));
}

TEST(Plan, SamplerExecutesEverythingWhenCiIsZero) {
  const plan::Plan p = build_apache_plan();
  plan::SamplerOptions so;  // ci 0 = sampling off
  plan::AdaptiveSampler sampler(p, so);
  EXPECT_FALSE(sampler.sampling_enabled());

  std::set<std::size_t> issued;
  for (;;) {
    const auto batch = sampler.next_batch();
    if (batch.empty()) break;
    for (std::size_t idx : batch) {
      EXPECT_TRUE(issued.insert(idx).second) << "entry issued twice";
      sampler.record(idx, true, false);
    }
  }
  EXPECT_EQ(issued.size(), p.executable_count());
  EXPECT_TRUE(sampler.unsampled().empty());
  for (const auto& s : sampler.progress()) {
    EXPECT_FALSE(s.stopped_early);
    EXPECT_EQ(s.issued, s.planned);
  }
}

TEST(Plan, SamplerStopsAStratumOnceTheIntervalIsNarrow) {
  // Synthetic plan: one function, one fault type, many parameters → one
  // stratum with 40 members.
  plan::Plan p;
  p.workload = "synthetic";
  p.target_image = "x.exe";
  for (int i = 0; i < 40; ++i) {
    plan::PlanEntry e;
    e.fault.target_image = "x.exe";
    e.fault.fn = nt::Fn::ReadFile;
    e.fault.param_index = i;
    e.fault.type = inject::FaultType::kZero;
    e.disposition = plan::Disposition::kExecute;
    p.entries.push_back(e);
  }

  plan::SamplerOptions so;
  so.ci_half_width = 0.2;
  so.min_stratum_trials = 5;
  so.batch = 5;
  so.seed = 3;
  plan::AdaptiveSampler sampler(p, so);
  EXPECT_TRUE(sampler.sampling_enabled());

  std::size_t executed = 0;
  for (;;) {
    const auto batch = sampler.next_batch();
    if (batch.empty()) break;
    for (std::size_t idx : batch) {
      ++executed;
      sampler.record(idx, /*activated=*/true, /*failure=*/false);  // 0% failure
    }
  }
  // An all-success stratum converges long before 40 runs at half-width 0.2.
  EXPECT_LT(executed, 40u);
  const auto progress = sampler.progress();
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_TRUE(progress[0].stopped_early);
  EXPECT_LE(progress[0].ci_half_width, 0.2);
  EXPECT_EQ(sampler.unsampled().size(), 40u - executed);
}

}  // namespace
}  // namespace dts
