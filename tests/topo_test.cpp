// Multi-tier topology subsystem tests (src/topo/): parsing, config
// round-trips, golden and faulted three-tier campaigns, byte-identity across
// jobs/snapshots/distributed execution, journal v6, replay, and report
// reconciliation. Labelled `topo` in CTest (part of both sanitizer presets).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/campaign.h"
#include "core/config.h"
#include "dist/coordinator.h"
#include "exec/journal.h"
#include "forensics/replay.h"
#include "forensics/signature.h"
#include "inject/fault.h"
#include "obs/fleet/report.h"
#include "topo/topology.h"

namespace dts {
namespace {

// The seed three-tier campaign of the README quickstart: a faulted single-
// replica database behind redundant web and app tiers.
constexpr char kThreeTierConfig[] =
    "[test]\n"
    "middleware = none\n"
    "seed = 7\n"
    "max_faults = 6\n"
    "\n"
    "[topology]\n"
    "topology = lb:2*apache -> app:2*iis -> db:1*sql_server\n"
    "tier = db\n";

core::DtsConfig parse_or_die(const std::string& text) {
  std::string error;
  auto cfg = core::parse_config(text, &error);
  EXPECT_TRUE(cfg.has_value()) << error;
  return cfg.value();  // throws on failure, failing the test loudly
}

std::string parse_error(const std::string& text) {
  std::string error;
  EXPECT_FALSE(core::parse_config(text, &error).has_value())
      << "config unexpectedly parsed:\n"
      << text;
  return error;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// --- topology spec parsing ------------------------------------------------

TEST(TopologyParse, CanonicalRoundTrip) {
  std::string error;
  const auto spec =
      topo::parse_topology("lb:2*apache -> app:2*iis -> db:1*sql_server", &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->tiers.size(), 3u);
  EXPECT_EQ(spec->tiers[0].name, "lb");
  EXPECT_EQ(spec->tiers[0].replicas, 2);
  EXPECT_EQ(spec->tiers[0].app, "apache");
  EXPECT_EQ(spec->tiers[2].app, "sql_server");
  EXPECT_EQ(spec->fault_tier, "db");
  EXPECT_EQ(spec->to_string(), "lb:2*apache -> app:2*iis -> db:1*sql_server");
  const auto again = topo::parse_topology(spec->to_string(), &error);
  ASSERT_TRUE(again) << error;
  EXPECT_EQ(again->tiers, spec->tiers);
}

TEST(TopologyParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                              // empty
      "lb:2*apache ->",                // trailing arrow
      "lb:2*apache -> -> db:1*iis",    // empty middle tier
      "lb2*apache",                    // missing colon
      "lb:0*apache",                   // replicas below range
      "lb:9*apache",                   // replicas above range
      "lb:2*nginx",                    // unknown app
      "lb:2*apache -> lb:1*iis",       // duplicate tier name
      "client:1*apache",               // reserved tier name
      "Web:1*apache",                  // uppercase tier name
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(topo::parse_topology(text, &error).has_value())
        << "unexpectedly parsed: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// --- configuration parsing ------------------------------------------------

TEST(TopoConfig, ThreeTierConfigDerivesWorkloadFromFaultTier) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  ASSERT_FALSE(cfg.run.topo.empty());
  EXPECT_EQ(cfg.run.topo.tiers.size(), 3u);
  EXPECT_EQ(cfg.run.topo.fault_tier, "db");
  // The faulted tier runs sql_server, so the fault sweep targets the SQL
  // workload's image.
  EXPECT_EQ(cfg.run.workload.name, "SQL");
  EXPECT_EQ(cfg.campaign.max_faults, 6u);
}

TEST(TopoConfig, SerializeRoundTripsTopologyAndNetwork) {
  core::DtsConfig cfg = parse_or_die(std::string(kThreeTierConfig) +
                                     "offered_rps_milli = 500\n"
                                     "requests = 10\n"
                                     "degraded_p95_ms = 2500\n"
                                     "\n"
                                     "[network]\n"
                                     "latency_us = 750\n"
                                     "link.app.db.latency_us = 1500\n");
  const std::string text = core::serialize_config(cfg);
  const core::DtsConfig again = parse_or_die(text);
  EXPECT_EQ(again.run.topo.to_string(), cfg.run.topo.to_string());
  EXPECT_EQ(again.run.topo.fault_tier, "db");
  EXPECT_EQ(again.run.topo.offered_rps_milli, 500);
  EXPECT_EQ(again.run.topo.requests, 10);
  EXPECT_EQ(again.run.topo.degraded_p95_ms, 2500);
  EXPECT_EQ(again.run.net.latency, sim::Duration::micros(750));
  ASSERT_EQ(again.run.links.size(), 1u);
  EXPECT_EQ(again.run.links[0].latency_us, 1500);
  // Serialization is a fixed point: parse(serialize(x)) serializes the same.
  EXPECT_EQ(core::serialize_config(again), text);
}

TEST(TopoConfig, WorkloadAndTopologyAreMutuallyExclusive) {
  // workload first, topology second…
  EXPECT_NE(parse_error("[test]\n"
                        "workload = IIS\n"
                        "middleware = none\n"
                        "[topology]\n"
                        "topology = db:1*sql_server\n")
                .find("mutually exclusive"),
            std::string::npos);
  // …and topology first, workload second.
  EXPECT_NE(parse_error("[topology]\n"
                        "topology = db:1*sql_server\n"
                        "[test]\n"
                        "workload = IIS\n"
                        "middleware = none\n")
                .find("mutually exclusive"),
            std::string::npos);
}

TEST(TopoConfig, StrictValidation) {
  // The named fault tier must exist in the topology.
  EXPECT_NE(parse_error("[topology]\n"
                        "topology = db:1*sql_server\n"
                        "tier = web\n")
                .find("web"),
            std::string::npos);
  // Middleware wraps the single-machine target, not a topology.
  EXPECT_NE(parse_error("[test]\n"
                        "middleware = watchd\n"
                        "[topology]\n"
                        "topology = db:1*sql_server\n")
                .find("middleware"),
            std::string::npos);
  // Topology knobs without a topology are typos, not defaults.
  EXPECT_NE(parse_error("[topology]\n"
                        "requests = 5\n")
                .find("require a topology"),
            std::string::npos);
  // Per-link overrides name tiers (or "client"); anything else is an error.
  EXPECT_NE(parse_error(std::string(kThreeTierConfig) +
                        "\n[network]\n"
                        "link.app.cache.latency_us = 10\n")
                .find("cache"),
            std::string::npos);
  // link.* without a topology has no endpoints to attach to.
  EXPECT_FALSE(parse_error("[network]\n"
                           "link.client.db.latency_us = 10\n")
                   .empty());
}

TEST(TopoConfig, GlobalNetworkSectionStandsAlone) {
  // [network] globals tune the classic single-machine campaign too.
  const core::DtsConfig cfg = parse_or_die(
      "[test]\n"
      "workload = IIS\n"
      "middleware = none\n"
      "\n"
      "[network]\n"
      "latency_us = 900\n"
      "bytes_per_second = 500000\n");
  EXPECT_TRUE(cfg.run.topo.empty());
  EXPECT_EQ(cfg.run.net.latency, sim::Duration::micros(900));
  EXPECT_EQ(cfg.run.net.bytes_per_second, 500000);
}

// --- fault ids and run lines ----------------------------------------------

TEST(TopoFaultId, TierPrefixRoundTrips) {
  const auto classic = inject::parse_fault_id("sqlservr.exe", "ReadFile.hFile#1:zero");
  ASSERT_TRUE(classic.has_value());
  EXPECT_TRUE(classic->tier.empty());
  EXPECT_EQ(classic->id(), "ReadFile.hFile#1:zero");

  const auto tiered = inject::parse_fault_id("sqlservr.exe", "db/ReadFile.hFile#1:zero");
  ASSERT_TRUE(tiered.has_value());
  EXPECT_EQ(tiered->tier, "db");
  EXPECT_EQ(tiered->id(), "db/ReadFile.hFile#1:zero");
  // Same underlying fault either way — the prefix is routing, not identity.
  EXPECT_EQ(tiered->fn, classic->fn);
  EXPECT_EQ(tiered->param_index, classic->param_index);
}

TEST(TopoRunLine, TrailerRoundTrips) {
  core::RunResult r;
  r.fault = *inject::parse_fault_id("sqlservr.exe", "db/ReadFile.hFile#1:zero");
  r.activated = true;
  r.outcome = core::Outcome::kNormalSuccess;
  core::TopoRunStats t;
  t.tier = "db";
  t.user_outcome = "masked";
  t.requests_total = 12;
  t.requests_ok = 12;
  t.p50_us = 4346223;
  t.p95_us = 5146019;
  t.p99_us = 5146019;
  t.offered_rps_milli = 1000;
  r.topo = t;

  const std::string line = core::serialize_run_line(r);
  core::RunResult parsed;
  std::string error;
  ASSERT_TRUE(core::parse_run_line("sqlservr.exe", line, &parsed, &error)) << error;
  ASSERT_TRUE(parsed.topo.has_value());
  EXPECT_EQ(*parsed.topo, t);
  EXPECT_EQ(core::serialize_run_line(parsed), line);

  // A classic line stays topo-free…
  r.topo.reset();
  ASSERT_TRUE(
      core::parse_run_line("sqlservr.exe", core::serialize_run_line(r), &parsed, &error));
  EXPECT_FALSE(parsed.topo.has_value());
  // …and corrupted trailers are rejected, not ignored.
  EXPECT_FALSE(core::parse_run_line("sqlservr.exe", line + " junk", &parsed, &error));
  std::string bad = line;
  bad.replace(bad.find(" topo "), 6, " trailer ");
  EXPECT_FALSE(core::parse_run_line("sqlservr.exe", bad, &parsed, &error));
  std::string bad_outcome = line;
  bad_outcome.replace(bad_outcome.find("masked"), 6, "mended");
  EXPECT_FALSE(core::parse_run_line("sqlservr.exe", bad_outcome, &parsed, &error));
}

// --- execution ------------------------------------------------------------

TEST(TopoRun, GoldenThreeTierRunIsMasked) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  const core::RunResult golden = core::execute_run(cfg.run, std::nullopt);
  ASSERT_TRUE(golden.topo.has_value());
  EXPECT_EQ(golden.topo->tier, "db");
  EXPECT_EQ(golden.topo->user_outcome, "masked");
  EXPECT_EQ(golden.topo->requests_total, cfg.run.topo.requests);
  EXPECT_EQ(golden.topo->requests_ok, cfg.run.topo.requests);
  EXPECT_GT(golden.topo->p50_us, 0);
  EXPECT_GE(golden.topo->p95_us, golden.topo->p50_us);
  EXPECT_GE(golden.topo->p99_us, golden.topo->p95_us);
  EXPECT_EQ(golden.outcome, core::Outcome::kNormalSuccess);
}

TEST(TopoRun, SingleReplicaDbFaultPropagatesToOutage) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  core::CampaignOptions opt = cfg.campaign;
  const core::WorkloadSetResult set = core::run_workload_set(cfg.run, opt);
  ASSERT_EQ(set.runs.size(), 6u);

  std::size_t outages = 0;
  for (const auto& run : set.runs) {
    ASSERT_TRUE(run.topo.has_value()) << run.fault.id();
    EXPECT_EQ(run.topo->tier, "db");
    EXPECT_EQ(run.fault.tier, "db");
    if (run.topo->user_outcome == "outage") {
      ++outages;
      // A full outage means the classic axis saw a failure too.
      EXPECT_EQ(run.outcome, core::Outcome::kFailure);
      EXPECT_EQ(run.topo->requests_ok, 0);
    }
  }
  // The seed campaign kills the lone sql_server via CreateFileA: with one
  // replica there is nothing to fail over to, so the fault surfaces as a
  // user-visible outage.
  EXPECT_GE(outages, 1u);
}

TEST(TopoRun, RedundantTierMasksInstanceFaults) {
  const core::DtsConfig cfg = parse_or_die(
      "[test]\n"
      "middleware = none\n"
      "seed = 7\n"
      "max_faults = 6\n"
      "\n"
      "[topology]\n"
      "topology = lb:2*apache -> app:2*iis -> db:1*sql_server\n"
      "tier = app\n");
  EXPECT_EQ(cfg.run.workload.name, "IIS");
  const core::WorkloadSetResult set = core::run_workload_set(cfg.run, cfg.campaign);
  ASSERT_EQ(set.runs.size(), 6u);
  for (const auto& run : set.runs) {
    ASSERT_TRUE(run.topo.has_value());
    EXPECT_EQ(run.topo->tier, "app");
    // Two replicas behind the tier's balancer: a single-instance fault must
    // never take out every request.
    EXPECT_NE(run.topo->user_outcome, "outage") << run.fault.id();
  }
}

// --- byte-identity --------------------------------------------------------

TEST(TopoExec, ByteIdenticalAcrossJobs) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  core::CampaignOptions opt = cfg.campaign;

  opt.jobs = 1;
  const std::string serial = core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  opt.jobs = 2;
  const std::string two = core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  opt.jobs = 8;
  const std::string eight = core::serialize_workload_set(core::run_workload_set(cfg.run, opt));

  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // The topology identity survives the round-trip.
  std::string error;
  auto reloaded = core::deserialize_workload_set(eight, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->base_config.topo.to_string(), cfg.run.topo.to_string());
  EXPECT_EQ(core::serialize_workload_set(*reloaded), serial);
}

TEST(TopoSnap, SnapshotModeFallsBackToFullRunsByteIdentical) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  core::CampaignOptions opt = cfg.campaign;

  opt.snapshots = false;
  const std::string off = core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  opt.snapshots = true;
  opt.jobs = 8;
  const std::string on = core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  EXPECT_EQ(off, on);
}

TEST(TopoDist, CoordinatorWorkersMatchSerialByteIdentical) {
  const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
  core::CampaignOptions opt = cfg.campaign;

  opt.jobs = 1;
  const core::WorkloadSetResult serial = core::run_workload_set(cfg.run, opt);

  dist::DistOptions d;
  d.spawn_workers = 2;
  const core::WorkloadSetResult distributed =
      dist::run_workload_set_distributed(cfg.run, opt, d);

  EXPECT_EQ(core::serialize_workload_set(distributed), core::serialize_workload_set(serial));
}

// --- journal, replay, report ----------------------------------------------

class TopoJournalTest : public ::testing::Test {
 protected:
  // One journaled three-tier campaign shared by the journal/replay/report
  // tests (runs once; each test reloads the file).
  static void SetUpTestSuite() {
    journal_path_ = new std::string(temp_path("topo_journal.jsonl"));
    std::filesystem::remove(*journal_path_);
    const core::DtsConfig cfg = parse_or_die(kThreeTierConfig);
    core::CampaignOptions opt = cfg.campaign;
    opt.journal_path = *journal_path_;
    (void)core::run_workload_set(cfg.run, opt);
  }
  static void TearDownTestSuite() {
    delete journal_path_;
    journal_path_ = nullptr;
  }

  static std::string* journal_path_;
};

std::string* TopoJournalTest::journal_path_ = nullptr;

TEST_F(TopoJournalTest, JournalIsV6WithTierAnnotations) {
  std::string error;
  const auto file = exec::read_journal_file(*journal_path_, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(file->version, 6u);
  ASSERT_EQ(file->records.size(), 6u);
  for (const auto& rec : file->records) {
    EXPECT_EQ(rec.tier, "db");
    EXPECT_EQ(rec.fault_id.substr(0, 3), "db/");
  }
}

TEST_F(TopoJournalTest, ClassicCampaignJournalStaysV5TierFree) {
  const std::string path = temp_path("classic_journal.jsonl");
  std::filesystem::remove(path);
  const core::DtsConfig cfg = parse_or_die(
      "[test]\n"
      "workload = SQL\n"
      "middleware = none\n"
      "seed = 7\n"
      "max_faults = 4\n");
  core::CampaignOptions opt = cfg.campaign;
  opt.journal_path = path;
  (void)core::run_workload_set(cfg.run, opt);

  std::string error;
  const auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(file->version, 5u);
  ASSERT_FALSE(file->records.empty());
  for (const auto& rec : file->records) EXPECT_TRUE(rec.tier.empty());
}

TEST_F(TopoJournalTest, ReplayOfMultiTierFailureMatches) {
  std::string error;
  const auto file = exec::read_journal_file(*journal_path_, &error);
  ASSERT_TRUE(file.has_value()) << error;

  // Replay every record — the outage and the masked ones both re-execute the
  // full topology and must reproduce the journaled run exactly.
  for (const auto& rec : file->records) {
    const auto result = forensics::replay_record(*file, rec, {}, &error);
    ASSERT_TRUE(result.has_value()) << rec.fault_id << ": " << error;
    EXPECT_TRUE(result->matches()) << rec.fault_id;
    ASSERT_TRUE(result->run.topo.has_value()) << rec.fault_id;
    EXPECT_EQ(result->run.topo->tier, "db");
  }
}

TEST_F(TopoJournalTest, ReportMatrixReconcilesWithJournalCounts) {
  std::string error;
  const auto file = exec::read_journal_file(*journal_path_, &error);
  ASSERT_TRUE(file.has_value()) << error;

  const auto report = obs::fleet::build_report({*file});
  ASSERT_EQ(report.groups.size(), 1u);
  const auto& g = report.groups[0];
  EXPECT_EQ(g.records, file->records.size());
  // Every record of a topology campaign carries propagation stats, and the
  // matrix cells sum back to the record count.
  EXPECT_EQ(g.topo_runs, g.records);
  std::uint64_t cells = 0;
  for (const auto& [tier, counts] : g.tier_outcomes) {
    EXPECT_EQ(tier, "db");
    for (const auto c : counts) cells += c;
  }
  EXPECT_EQ(cells, g.topo_runs);

  const std::string markdown = obs::fleet::render_report_markdown(report);
  EXPECT_NE(markdown.find("Per-tier fault propagation"), std::string::npos);
  EXPECT_NE(markdown.find("Degradation curve"), std::string::npos);
  const std::string html = obs::fleet::render_report_html(report);
  EXPECT_NE(html.find("Per-tier fault propagation"), std::string::npos);
}

// --- signatures -----------------------------------------------------------

TEST(TopoSignature, TierFoldsIntoDigestOnlyWhenPresent) {
  forensics::SignatureKey key;
  key.fault_class = "file-handle:zero";
  key.call_context = "ReadFile@417#1/89ab89ab89ab89ab";
  key.outcome = "failure";
  key.span = "none";

  const std::uint64_t classic = forensics::signature_digest(key);
  key.tier = "db";
  const std::uint64_t tiered = forensics::signature_digest(key);
  EXPECT_NE(classic, tiered);
  key.tier = "app";
  EXPECT_NE(forensics::signature_digest(key), tiered);
  // Empty tier reproduces the pre-topology digest — classic signatures from
  // old journals keep their ids.
  key.tier.clear();
  EXPECT_EQ(forensics::signature_digest(key), classic);
}

}  // namespace
}  // namespace dts
