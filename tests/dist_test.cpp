// Tests for the distributed campaign subsystem (src/dist/): wire framing,
// socket edge paths (loopback only), the Controller/TargetAgent protocol over
// a real TCP socket, and coordinator + multi-process worker campaigns —
// including a forced worker crash — whose output must stay byte-identical to
// a serial sweep. Labelled `dist` in CTest (also run under ASan/TSan presets).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/controller.h"
#include "core/report.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/socket.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "exec/executor.h"
#include "obs/metrics.h"

namespace dts {
namespace {

core::RunConfig make_config(const std::string& workload,
                            mw::MiddlewareKind m = mw::MiddlewareKind::kNone) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  cfg.middleware = m;
  cfg.watchd_version = mw::WatchdVersion::kV3;
  return cfg;
}

inject::FaultList capped_list(const core::RunConfig& cfg, std::uint64_t seed,
                              std::size_t cap) {
  const auto fns = core::profile_workload(cfg, seed);
  return inject::FaultList::for_functions(cfg.workload.target_image, fns).sampled(cap);
}

std::vector<std::string> run_lines(const std::vector<core::RunResult>& runs) {
  std::vector<std::string> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(core::serialize_run_line(r));
  return out;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Forks a worker process joining the loopback coordinator at `port`.
pid_t fork_worker(std::uint16_t port, int crash_after_runs = -1) {
  dist::WorkerOptions w;
  w.port = port;
  w.crash_after_runs = crash_after_runs;
  return dist::spawn_worker_process(w, /*close_fd=*/-1);
}

// --- wire framing --------------------------------------------------------

TEST(DistWire, FramesReassembleFromSingleByteFeeds) {
  const std::vector<std::string> payloads = {"{\"type\":\"hello\"}", "", "x",
                                             std::string(1000, 'z')};
  std::string stream;
  for (const auto& p : payloads) stream += dist::encode_frame(p);

  dist::FrameDecoder decoder;
  std::vector<std::string> got;
  for (char c : stream) {
    decoder.feed(std::string_view(&c, 1));  // worst-case short reads
    while (auto f = decoder.next()) got.push_back(*f);
  }
  EXPECT_EQ(got, payloads);
  EXPECT_TRUE(decoder.at_frame_boundary());
  EXPECT_TRUE(decoder.error().empty());
}

TEST(DistWire, OversizedFrameRejectedBothWays) {
  EXPECT_THROW((void)dist::encode_frame(std::string(dist::kMaxFramePayload + 1, 'a')),
               std::length_error);

  dist::FrameDecoder decoder;
  decoder.feed(std::to_string(dist::kMaxFramePayload + 1) + "\n");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error().empty());
  // Poisoned for good: even valid bytes afterwards yield nothing.
  decoder.feed(dist::encode_frame("ok"));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(DistWire, MalformedLengthPrefixPoisonsStream) {
  dist::FrameDecoder decoder;
  decoder.feed("GET / HTTP/1.1\r\n");  // a peer speaking the wrong protocol
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error().empty());
  EXPECT_FALSE(decoder.at_frame_boundary());
}

TEST(DistWire, MidFrameIsNotAFrameBoundary) {
  dist::FrameDecoder decoder;
  const std::string frame = dist::encode_frame("{\"type\":\"done\"}");
  decoder.feed(std::string_view(frame).substr(0, frame.size() / 2));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.at_frame_boundary());  // a disconnect here tears a frame
  decoder.feed(std::string_view(frame).substr(frame.size() / 2));
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_TRUE(decoder.at_frame_boundary());
}

// --- protocol messages ---------------------------------------------------

TEST(DistProtocol, MessagesRoundTrip) {
  dist::Welcome w;
  w.workload = "Apache1";
  w.middleware = 2;
  w.watchd_version = 3;
  w.seed = 7;
  w.fault_count = 42;
  w.digest = 0xdeadbeefull;
  w.config = "[test]\nworkload = Apache1\n";
  const auto w2 = dist::decode_welcome(dist::encode_welcome(w));
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->workload, w.workload);
  EXPECT_EQ(w2->config, w.config);
  EXPECT_EQ(w2->digest, w.digest);

  dist::Lease lease;
  lease.lease_id = 3;
  lease.digest = 9;
  lease.indices = {4, 5, 9};
  lease.fault_ids = {"a.b#1:zero", "a.b#2:rand", "c.d#1:null"};
  const auto l2 = dist::decode_lease(dist::encode_lease(lease));
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->indices, lease.indices);
  EXPECT_EQ(l2->fault_ids, lease.fault_ids);

  std::vector<core::RequestResult> reqs(2);
  reqs[0].ok = true;
  reqs[0].attempts = 1;
  reqs[1].ok = false;
  reqs[1].attempts = 3;
  const auto back = dist::decode_requests(dist::encode_requests(reqs));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].ok);
  EXPECT_EQ(back[1].attempts, 3);
}

// --- socket edge paths (loopback) ----------------------------------------

TEST(DistSocket, ConnectFailureIsBoundedAndReported) {
  // Grab an ephemeral port, then free it so nothing listens there.
  std::string error;
  std::uint16_t dead_port = 0;
  {
    dist::Listener probe = dist::Listener::open("127.0.0.1", 0, &error);
    ASSERT_TRUE(probe.valid()) << error;
    dead_port = probe.port();
  }
  const auto start = std::chrono::steady_clock::now();
  dist::Socket s = dist::tcp_connect("127.0.0.1", dead_port, /*timeout_ms=*/200,
                                     /*retries=*/2, &error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(error.empty());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 10);
}

TEST(DistSocket, ShortWritesAndReadsReassemble) {
  std::string error;
  dist::Listener listener = dist::Listener::open("127.0.0.1", 0, &error);
  ASSERT_TRUE(listener.valid()) << error;
  dist::Socket client =
      dist::tcp_connect("127.0.0.1", listener.port(), 1000, 0, &error);
  ASSERT_TRUE(client.valid()) << error;
  dist::Socket server = listener.accept(1000);
  ASSERT_TRUE(server.valid());

  const std::string payload(64 * 1024, 'q');  // larger than one recv cap
  const std::string frame = dist::encode_frame(payload);
  for (std::size_t off = 0; off < frame.size(); off += 1024) {
    ASSERT_TRUE(dist::send_all(client.fd(),
                               std::string_view(frame).substr(off, 1024), 1000));
  }

  dist::FrameDecoder decoder;
  std::string got;
  while (true) {
    if (auto f = decoder.next()) {
      got = *f;
      break;
    }
    std::string chunk;
    const auto st = dist::recv_some(server.fd(), &chunk, 4096, 1000);
    ASSERT_EQ(st, dist::RecvStatus::kData);
    decoder.feed(chunk);
  }
  EXPECT_EQ(got, payload);
}

TEST(DistSocket, PeerDisconnectMidFrameIsDetected) {
  std::string error;
  dist::Listener listener = dist::Listener::open("127.0.0.1", 0, &error);
  ASSERT_TRUE(listener.valid()) << error;
  dist::Socket client =
      dist::tcp_connect("127.0.0.1", listener.port(), 1000, 0, &error);
  ASSERT_TRUE(client.valid()) << error;
  dist::Socket server = listener.accept(1000);
  ASSERT_TRUE(server.valid());

  const std::string frame = dist::encode_frame("{\"type\":\"ready\",\"digest\":1}");
  ASSERT_TRUE(dist::send_all(client.fd(),
                             std::string_view(frame).substr(0, frame.size() - 3), 1000));
  client.close();  // crash mid-frame

  dist::FrameDecoder decoder;
  for (;;) {
    std::string chunk;
    const auto st = dist::recv_some(server.fd(), &chunk, 4096, 1000);
    if (st == dist::RecvStatus::kData) {
      decoder.feed(chunk);
      continue;
    }
    EXPECT_EQ(st, dist::RecvStatus::kClosed);
    break;
  }
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.at_frame_boundary());  // the tear is visible
}

TEST(DistSocket, ReadFromSilentPeerTimesOut) {
  std::string error;
  dist::Listener listener = dist::Listener::open("127.0.0.1", 0, &error);
  ASSERT_TRUE(listener.valid()) << error;
  dist::Socket client =
      dist::tcp_connect("127.0.0.1", listener.port(), 1000, 0, &error);
  ASSERT_TRUE(client.valid()) << error;
  dist::Socket server = listener.accept(1000);
  ASSERT_TRUE(server.valid());

  std::string chunk;
  EXPECT_EQ(dist::recv_some(server.fd(), &chunk, 4096, /*timeout_ms=*/50),
            dist::RecvStatus::kTimeout);
  EXPECT_TRUE(chunk.empty());
}

TEST(DistSocket, ParseHostPort) {
  const auto hp = dist::parse_host_port("10.1.2.3:8080");
  ASSERT_TRUE(hp.has_value());
  EXPECT_EQ(hp->first, "10.1.2.3");
  EXPECT_EQ(hp->second, 8080);
  EXPECT_FALSE(dist::parse_host_port("nohost").has_value());
  EXPECT_FALSE(dist::parse_host_port("host:notaport").has_value());
  EXPECT_FALSE(dist::parse_host_port("host:99999").has_value());
}

// The paper's Controller/TargetAgent protocol over a real TCP socket: the
// line protocol was designed so "a socket transport drops in unchanged".
TEST(DistSocket, ControllerDrivesTargetAgentOverLoopback) {
  std::string error;
  dist::Listener listener = dist::Listener::open("127.0.0.1", 0, &error);
  ASSERT_TRUE(listener.valid()) << error;
  dist::Socket client =
      dist::tcp_connect("127.0.0.1", listener.port(), 1000, 0, &error);
  ASSERT_TRUE(client.valid()) << error;
  dist::Socket server = listener.accept(1000);
  ASSERT_TRUE(server.valid());

  const core::RunConfig cfg = make_config("Apache1");
  std::thread agent_thread([&server, cfg] {
    dist::SocketTransport agent_end(std::move(server), {.io_timeout_ms = 5000});
    core::TargetAgent agent(cfg, agent_end);
    // One profile request + one run request.
    ASSERT_TRUE(agent_end.serve_one(5000)) << agent_end.error();
    ASSERT_TRUE(agent_end.serve_one(5000)) << agent_end.error();
  });

  dist::SocketTransport controller_end(std::move(client),
                                       {.io_timeout_ms = 5000, .sync_request = true});
  core::Controller controller(controller_end);
  const auto fns = controller.profile();
  EXPECT_FALSE(fns.empty());

  const inject::FaultList list = capped_list(cfg, 7, 4);
  ASSERT_FALSE(list.faults.empty());
  const core::RunResult remote = controller.run_fault(list.faults[0]);
  EXPECT_EQ(controller.protocol_errors(), 0);
  EXPECT_GT(controller_end.bytes_sent(), 0u);
  EXPECT_GT(controller_end.bytes_received(), 0u);
  agent_thread.join();

  // The remote run reports the same outcome line as a local controller pair.
  core::TransportPair pair = core::make_in_process_transport();
  core::TargetAgent local_agent(cfg, *pair.agent_end);
  core::Controller local(*pair.controller_end);
  EXPECT_EQ(core::serialize_run_line(remote),
            core::serialize_run_line(local.run_fault(list.faults[0])));
}

// --- coordinator + worker fleet ------------------------------------------

// The tentpole acceptance bar: a coordinator with two worker processes
// produces byte-identical output to the in-process serial executor —
// including results.csv, which renders per-request results and details that
// travel over the wire, not through the journal.
TEST(DistCampaign, TwoWorkerProcessesMatchSerialByteIdentical) {
  const core::RunConfig cfg = make_config("Apache1", mw::MiddlewareKind::kWatchd);
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 16;

  opt.jobs = 1;
  const core::WorkloadSetResult serial = core::run_workload_set(cfg, opt);

  dist::DistOptions d;
  d.spawn_workers = 2;
  obs::MetricsRegistry metrics;
  core::CampaignOptions dopt = opt;
  dopt.metrics = &metrics;
  const core::WorkloadSetResult distributed =
      dist::run_workload_set_distributed(cfg, dopt, d);

  EXPECT_EQ(core::serialize_workload_set(distributed),
            core::serialize_workload_set(serial));
  EXPECT_EQ(core::runs_csv(distributed), core::runs_csv(serial));
  EXPECT_EQ(metrics.counter("dts_dist_leases_reassigned_total").value(), 0u);
  EXPECT_GT(metrics.counter("dts_dist_leases_issued_total").value(), 0u);
  EXPECT_GT(metrics.counter("dts_dist_bytes_sent_total").value(), 0u);
  EXPECT_GT(metrics.counter("dts_dist_bytes_received_total").value(), 0u);
}

// Kill one worker mid-shard: its lease is reassigned (exactly once) and the
// campaign still completes byte-identical to serial.
TEST(DistCampaign, WorkerCrashMidShardReassignsLeaseAndStaysByteIdentical) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 20);
  ASSERT_GE(list.faults.size(), 8u);

  exec::ExecOptions serial_opts;
  serial_opts.jobs = 1;
  const exec::CampaignResult serial =
      exec::CampaignExecutor(serial_opts).run(cfg, list, 7);

  obs::MetricsRegistry metrics;
  dist::DistOptions d;
  d.lease_size = 4;  // leases span several faults, so a crash tears one
  d.metrics = &metrics;
  dist::Coordinator coordinator(cfg, list, 7, d);

  // Worker A streams one result and then _exit()s mid-lease; worker B is
  // healthy and finishes the campaign, including A's reassigned remainder.
  const pid_t crasher = fork_worker(coordinator.port(), /*crash_after_runs=*/1);
  const pid_t healthy = fork_worker(coordinator.port());
  ASSERT_GT(crasher, 0);
  ASSERT_GT(healthy, 0);

  const exec::CampaignResult distributed = coordinator.run();
  EXPECT_EQ(run_lines(distributed.runs), run_lines(serial.runs));
  EXPECT_EQ(metrics.counter("dts_dist_leases_reassigned_total").value(), 1u);
  EXPECT_EQ(metrics.counter("dts_dist_leases_expired_total").value(), 0u);

  int status = 0;
  ASSERT_EQ(::waitpid(crasher, &status, 0), crasher);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 3);  // the crash hook
  ASSERT_EQ(::waitpid(healthy, &status, 0), healthy);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// A distributed journal is the same artifact as an in-process journal: a
// campaign interrupted distributed-side resumes in-process with nothing
// re-executed, and vice versa the records pre-fill a distributed run.
TEST(DistCampaign, DistributedJournalResumesInProcess) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 10);

  const std::string journal = temp_path("dist_journal.jsonl");
  std::filesystem::remove(journal);

  dist::DistOptions d;
  d.spawn_workers = 1;
  d.journal_path = journal;
  dist::Coordinator coordinator(cfg, list, 7, d);
  const exec::CampaignResult distributed = coordinator.run();
  ASSERT_FALSE(distributed.runs.empty());

  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  eo.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(eo).run(cfg, list, 7);
  EXPECT_EQ(resumed.executed, 0u);  // every run came from the distributed journal
  EXPECT_EQ(resumed.reused, distributed.executed);
  EXPECT_EQ(run_lines(resumed.runs), run_lines(distributed.runs));
}

// A worker that validated against one campaign refuses leases from another:
// the handshake digest travels on every lease, so a coordinator restarted
// with a different fault list on the same port cannot feed a stale worker.
TEST(DistCampaign, WorkerRefusesMismatchedCampaign) {
  // Exercised end-to-end via run_worker's validation path: a worker pointed
  // at a dead port exits 1 (connection), and the digest/identity checks are
  // covered by the integration tests above accepting only matching leases.
  dist::WorkerOptions w;
  w.port = 1;  // privileged port nobody listens on
  w.connect_timeout_ms = 100;
  w.connect_retries = 1;
  std::string error;
  EXPECT_EQ(dist::run_worker(w, &error), 1);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dts
