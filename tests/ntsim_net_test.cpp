// Tests for the simulated network: connections, data transfer timing,
// refusal when no listener exists, resets on process death.
#include <gtest/gtest.h>

#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts::nt {
namespace {

using sim::Duration;

struct NetWorld {
  sim::Simulation simu{7};
  net::Network net{simu};  // must outlive the machines (see netsim.h)
  Machine server{simu, MachineConfig{.name = "target", .cpu_scale = 1.0}};
  Machine client{simu, MachineConfig{.name = "control", .cpu_scale = 1.0}};
};

TEST(Net, EchoAcrossMachines) {
  NetWorld w;
  std::string server_got, client_got;

  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    EXPECT_NE(listener, nullptr);
    if (listener == nullptr) co_return;
    auto sock = co_await listener->accept(c);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    auto req = co_await sock->recv(c, 1024);
    EXPECT_TRUE(req.has_value());
    if (!req) co_return;
    server_got = *req;
    sock->send("pong");
    // Keep the socket open until the client reads.
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(50));  // let the server listen
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    sock->send("ping");
    auto resp = co_await sock->recv(c, 1024, Duration::seconds(5));
    EXPECT_TRUE(resp.has_value());
    if (!resp) co_return;
    client_got = *resp;
  });

  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(Net, ConnectionRefusedWithoutListener) {
  NetWorld w;
  bool refused = false;
  sim::Duration elapsed{};
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    const auto t0 = c.m().sim().now();
    auto sock = co_await w.net.connect(c, "target", 80);
    elapsed = c.m().sim().now() - t0;
    refused = (sock == nullptr);
  });
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(5));
  EXPECT_TRUE(refused);
  EXPECT_LT(elapsed, Duration::millis(100));  // RST is fast, not a timeout
}

TEST(Net, TransferTimeScalesWithSize) {
  NetWorld w;
  sim::Duration small_time{}, large_time{};
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    for (int i = 0; i < 2; ++i) {
      auto sock = co_await listener->accept(c);
      auto req = co_await sock->recv(c, 16);
      const std::size_t size = *req == "S" ? 1000 : 115000;
      sock->send(std::string(size, 'x'));
      co_await sleep_in_sim(c, Duration::millis(200));
    }
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    for (const bool small : {true, false}) {
      auto sock = co_await w.net.connect(c, "target", 80);
      EXPECT_NE(sock, nullptr);
      if (sock == nullptr) co_return;
      const auto t0 = c.m().sim().now();
      sock->send(small ? "S" : "L");
      auto data = co_await sock->recv_exactly(c, small ? 1000 : 115000,
                                              Duration::seconds(30));
      EXPECT_TRUE(data.has_value());
      if (!data) co_return;
      (small ? small_time : large_time) = c.m().sim().now() - t0;
    }
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(60));
  EXPECT_GT(large_time, small_time * 10);
}

TEST(Net, ServerCrashResetsClientConnection) {
  NetWorld w;
  bool got_eof = false;
  Pid server_pid = 0;
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    // Crash mid-request: frames are destroyed, RAII closes the socket.
    throw AccessViolation{0xBAD, false};
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    sock->send("GET / HTTP/1.0\r\n\r\n");
    auto resp = co_await sock->recv(c, 1024, Duration::seconds(15));
    got_eof = resp.has_value() && resp->empty();  // reset, not timeout
  });
  server_pid = w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(30));
  EXPECT_FALSE(w.server.alive(server_pid));
  EXPECT_TRUE(got_eof);
}

TEST(Net, ListenerDestructionFreesPort) {
  NetWorld w;
  {
    auto l1 = w.net.listen("target", 8080);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(w.net.listen("target", 8080), nullptr);  // in use
    EXPECT_TRUE(w.net.port_open("target", 8080));
  }
  EXPECT_FALSE(w.net.port_open("target", 8080));
  EXPECT_NE(w.net.listen("target", 8080), nullptr);
}

TEST(Net, RecvUntilFindsDelimiter) {
  NetWorld w;
  std::optional<std::string> line1, line2;
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    line1 = co_await sock->recv_until(c, "\r\n", 4096, Duration::seconds(5));
    line2 = co_await sock->recv_until(c, "\r\n", 4096, Duration::seconds(5));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    sock->send("GET / HTTP/1.0\r\nHost: x\r\n");
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_EQ(line1, "GET / HTTP/1.0\r\n");
  EXPECT_EQ(line2, "Host: x\r\n");
}

// A network partition in this model is the listener going away (the service
// died or was isolated): established connections reset, new connects are
// refused, and a re-listen heals the partition for retrying clients. This is
// the failover/retry contract the topology load balancer (src/topo/) builds
// on.
TEST(Net, PartitionThenReconnectHealsForRetryingClients) {
  NetWorld w;
  int refusals = 0;
  bool reconnected = false;
  std::optional<std::string> resumed;

  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    {
      auto listener = w.net.listen("target", 80);
      auto sock = co_await listener->accept(c);
      sock->send("up");
      co_await sleep_in_sim(c, Duration::millis(50));
      sock->close();
    }  // listener destroyed: the partition begins
    co_await sleep_in_sim(c, Duration::millis(500));
    // Partition heals: a fresh listener on the same port.
    auto listener = w.net.listen("target", 80);
    EXPECT_NE(listener, nullptr);
    if (listener == nullptr) co_return;
    auto sock = co_await listener->accept(c);
    sock->send("back");
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    (void)co_await sock->recv(c, 16, Duration::seconds(1));  // "up"
    (void)co_await sock->recv(c, 16, Duration::seconds(2));  // EOF: partition
    // Retry loop across the partition: refused until the server re-listens.
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto retry = co_await w.net.connect(c, "target", 80);
      if (retry == nullptr) {
        ++refusals;
        co_await sleep_in_sim(c, Duration::millis(100));
        continue;
      }
      reconnected = true;
      resumed = co_await retry->recv(c, 16, Duration::seconds(1));
      co_return;
    }
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_GE(refusals, 1);
  EXPECT_TRUE(reconnected);
  EXPECT_EQ(resumed, "back");
}

// The peer closing its end wakes a blocked reader with EOF (empty string),
// not a timeout — how relay daemons distinguish a dead backend from a slow
// one.
TEST(Net, PeerCloseDeliversEofToBlockedReader) {
  NetWorld w;
  std::optional<std::string> got;
  sim::Duration waited{};
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    co_await sleep_in_sim(c, Duration::millis(30));
    sock->close();  // no data ever sent
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    const auto t0 = c.m().sim().now();
    got = co_await sock->recv(c, 16, Duration::seconds(30));
    waited = c.m().sim().now() - t0;
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(60));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());                    // EOF, not payload
  EXPECT_LT(waited, Duration::seconds(1));      // and not a 30s timeout
}

// Per-link overrides ([network] link.*): the configured pair resolves the
// same config in either endpoint order, and unconfigured pairs keep the
// network default.
TEST(Net, PerLinkConfigResolvesSymmetricallyWithDefaultFallback) {
  NetWorld w;
  net::NetworkConfig slow;
  slow.latency = Duration::millis(25);
  slow.bytes_per_second = 10'000;
  w.net.set_link("control", "target", slow);

  EXPECT_EQ(w.net.link_config("control", "target"), slow);
  EXPECT_EQ(w.net.link_config("target", "control"), slow);  // order-blind
  EXPECT_EQ(w.net.link_config("control", "other"), net::NetworkConfig{});
}

// The override actually shapes traffic: with 25ms latency on the link, even
// a refused connect pays the SYN round trip, and an accepted transfer pays
// latency + size/bandwidth.
TEST(Net, PerLinkLatencyGovernsConnectAndTransfer) {
  NetWorld w;
  net::NetworkConfig slow;
  slow.latency = Duration::millis(25);
  slow.bytes_per_second = 10'000;  // 1000 bytes => 100ms serialization
  w.net.set_link("control", "target", slow);

  sim::Duration refusal{}, transfer{};
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(100));  // stay dark first
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    sock->send(std::string(1000, 'x'));
    co_await sleep_in_sim(c, Duration::seconds(5));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    auto t0 = c.m().sim().now();
    auto refused = co_await w.net.connect(c, "target", 80);
    refusal = c.m().sim().now() - t0;
    EXPECT_EQ(refused, nullptr);

    co_await sleep_in_sim(c, Duration::millis(200));  // server is up now
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    t0 = c.m().sim().now();
    std::size_t received = 0;
    while (received < 1000) {
      auto chunk = co_await sock->recv(c, 4096, Duration::seconds(10));
      if (!chunk || chunk->empty()) break;
      received += chunk->size();
    }
    transfer = c.m().sim().now() - t0;
    EXPECT_EQ(received, 1000u);
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(30));

  EXPECT_GE(refusal, Duration::millis(50));  // SYN round trip over 25ms links
  // Delivery = 25ms latency + 1000B / 10kB/s = 125ms, far above the 2ms
  // default-link figure.
  EXPECT_GE(transfer, Duration::millis(100));
}

}  // namespace
}  // namespace dts::nt
