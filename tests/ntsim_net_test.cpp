// Tests for the simulated network: connections, data transfer timing,
// refusal when no listener exists, resets on process death.
#include <gtest/gtest.h>

#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts::nt {
namespace {

using sim::Duration;

struct NetWorld {
  sim::Simulation simu{7};
  net::Network net{simu};  // must outlive the machines (see netsim.h)
  Machine server{simu, MachineConfig{.name = "target", .cpu_scale = 1.0}};
  Machine client{simu, MachineConfig{.name = "control", .cpu_scale = 1.0}};
};

TEST(Net, EchoAcrossMachines) {
  NetWorld w;
  std::string server_got, client_got;

  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    EXPECT_NE(listener, nullptr);
    if (listener == nullptr) co_return;
    auto sock = co_await listener->accept(c);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    auto req = co_await sock->recv(c, 1024);
    EXPECT_TRUE(req.has_value());
    if (!req) co_return;
    server_got = *req;
    sock->send("pong");
    // Keep the socket open until the client reads.
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(50));  // let the server listen
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    sock->send("ping");
    auto resp = co_await sock->recv(c, 1024, Duration::seconds(5));
    EXPECT_TRUE(resp.has_value());
    if (!resp) co_return;
    client_got = *resp;
  });

  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(Net, ConnectionRefusedWithoutListener) {
  NetWorld w;
  bool refused = false;
  sim::Duration elapsed{};
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    const auto t0 = c.m().sim().now();
    auto sock = co_await w.net.connect(c, "target", 80);
    elapsed = c.m().sim().now() - t0;
    refused = (sock == nullptr);
  });
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(5));
  EXPECT_TRUE(refused);
  EXPECT_LT(elapsed, Duration::millis(100));  // RST is fast, not a timeout
}

TEST(Net, TransferTimeScalesWithSize) {
  NetWorld w;
  sim::Duration small_time{}, large_time{};
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    for (int i = 0; i < 2; ++i) {
      auto sock = co_await listener->accept(c);
      auto req = co_await sock->recv(c, 16);
      const std::size_t size = *req == "S" ? 1000 : 115000;
      sock->send(std::string(size, 'x'));
      co_await sleep_in_sim(c, Duration::millis(200));
    }
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    for (const bool small : {true, false}) {
      auto sock = co_await w.net.connect(c, "target", 80);
      EXPECT_NE(sock, nullptr);
      if (sock == nullptr) co_return;
      const auto t0 = c.m().sim().now();
      sock->send(small ? "S" : "L");
      auto data = co_await sock->recv_exactly(c, small ? 1000 : 115000,
                                              Duration::seconds(30));
      EXPECT_TRUE(data.has_value());
      if (!data) co_return;
      (small ? small_time : large_time) = c.m().sim().now() - t0;
    }
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(60));
  EXPECT_GT(large_time, small_time * 10);
}

TEST(Net, ServerCrashResetsClientConnection) {
  NetWorld w;
  bool got_eof = false;
  Pid server_pid = 0;
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    // Crash mid-request: frames are destroyed, RAII closes the socket.
    throw AccessViolation{0xBAD, false};
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    EXPECT_NE(sock, nullptr);
    if (sock == nullptr) co_return;
    sock->send("GET / HTTP/1.0\r\n\r\n");
    auto resp = co_await sock->recv(c, 1024, Duration::seconds(15));
    got_eof = resp.has_value() && resp->empty();  // reset, not timeout
  });
  server_pid = w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(30));
  EXPECT_FALSE(w.server.alive(server_pid));
  EXPECT_TRUE(got_eof);
}

TEST(Net, ListenerDestructionFreesPort) {
  NetWorld w;
  {
    auto l1 = w.net.listen("target", 8080);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(w.net.listen("target", 8080), nullptr);  // in use
    EXPECT_TRUE(w.net.port_open("target", 8080));
  }
  EXPECT_FALSE(w.net.port_open("target", 8080));
  EXPECT_NE(w.net.listen("target", 8080), nullptr);
}

TEST(Net, RecvUntilFindsDelimiter) {
  NetWorld w;
  std::optional<std::string> line1, line2;
  w.server.register_program("server.exe", [&](Ctx c) -> sim::Task {
    auto listener = w.net.listen("target", 80);
    auto sock = co_await listener->accept(c);
    line1 = co_await sock->recv_until(c, "\r\n", 4096, Duration::seconds(5));
    line2 = co_await sock->recv_until(c, "\r\n", 4096, Duration::seconds(5));
  });
  w.client.register_program("client.exe", [&](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await w.net.connect(c, "target", 80);
    sock->send("GET / HTTP/1.0\r\nHost: x\r\n");
    co_await sleep_in_sim(c, Duration::seconds(1));
  });
  w.server.start_process("server.exe", "server.exe");
  w.client.start_process("client.exe", "client.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(10));
  EXPECT_EQ(line1, "GET / HTTP/1.0\r\n");
  EXPECT_EQ(line2, "Host: x\r\n");
}

}  // namespace
}  // namespace dts::nt
