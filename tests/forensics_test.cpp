// Tests for src/forensics/: execution-index parsing, call-context and trace
// digests, one-command replay (the determinism bar: outcome AND trace digest
// byte-identical for journals produced at jobs 1/2/8, snapshots on/off, and
// by a distributed coordinator), repro minimisation, failure-signature
// clustering (cluster counts reconcile exactly against journal totals),
// foreign-record quarantine, and the report renderer's HTML escaping.
// Labelled `forensics` in CTest (also in the ASan and TSan preset filters).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/config.h"
#include "dist/coordinator.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "forensics/minimize.h"
#include "forensics/replay.h"
#include "forensics/signature.h"
#include "obs/fleet/report.h"
#include "obs/fleet/span.h"
#include "obs/fleet/status.h"
#include "obs/metrics.h"
#include "sim/rng.h"
#include "snap/fork_runner.h"

namespace dts {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  return cfg;
}

/// Runs a small Apache campaign and returns its journal, freshly written.
exec::JournalFile campaign_journal(const std::string& name, int jobs,
                                   bool snapshots, std::size_t max_faults = 18,
                                   std::uint64_t seed = 7) {
  const std::string path = temp_path(name);
  std::filesystem::remove(path);
  core::CampaignOptions opt;
  opt.seed = seed;
  opt.max_faults = max_faults;
  opt.jobs = jobs;
  opt.snapshots = snapshots;
  opt.journal_path = path;
  (void)core::run_workload_set(apache_config(), opt);
  std::string error;
  auto file = exec::read_journal_file(path, &error);
  EXPECT_TRUE(file) << error;
  return *file;
}

// --- execution-index parsing -------------------------------------------------

TEST(ForensicsIndex, ParseRoundTripsAndRejectsGarbage) {
  obs::fleet::ExecutionIndex ei;
  ei.campaign_digest = 0xa3f1c0de9b24e871ull;
  ei.lease_id = 4;
  ei.fault_index = 17;
  const auto parsed = obs::fleet::ExecutionIndex::parse(ei.to_string());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->campaign_digest, ei.campaign_digest);
  EXPECT_EQ(parsed->lease_id, 4u);
  EXPECT_EQ(parsed->fault_index, 17u);

  EXPECT_FALSE(obs::fleet::ExecutionIndex::parse(""));
  EXPECT_FALSE(obs::fleet::ExecutionIndex::parse("not-an-index"));
  EXPECT_FALSE(obs::fleet::ExecutionIndex::parse("a3f1c0de9b24e871/4"));
  EXPECT_FALSE(obs::fleet::ExecutionIndex::parse(ei.to_string() + "junk"));
}

// --- call context + trace digest --------------------------------------------

TEST(ForensicsDigest, StableAcrossIdenticalRunsDistinctAcrossFaults) {
  // A fault on the Apache1 master's init path — guaranteed to fire (the
  // master never calls file-serving functions; those belong to the worker).
  core::RunConfig cfg = apache_config();
  const auto fault = inject::parse_fault_id(cfg.workload.target_image,
                                            "GetStartupInfoA.lpStartupInfo#1:zero");
  ASSERT_TRUE(fault);
  cfg.seed = sim::Rng::mix(7, sim::Rng::hash(fault->id()));

  core::FaultInjectionRun a(cfg);
  (void)a.execute(*fault);
  core::FaultInjectionRun b(cfg);
  (void)b.execute(*fault);

  EXPECT_NE(a.interceptor().trace_digest(), 0u);
  EXPECT_EQ(a.interceptor().trace_digest(), b.interceptor().trace_digest());
  ASSERT_TRUE(a.interceptor().injection_context());
  ASSERT_TRUE(b.interceptor().injection_context());
  EXPECT_EQ(a.interceptor().injection_context()->to_string(),
            b.interceptor().injection_context()->to_string());
  // The context names the corrupted function and carries a path digest.
  EXPECT_NE(
      a.interceptor().injection_context()->to_string().find("GetStartupInfoA@"),
      std::string::npos);

  // A different corruption produces a different trajectory fingerprint.
  const auto other = inject::parse_fault_id(cfg.workload.target_image,
                                            "GetStartupInfoA.lpStartupInfo#1:ones");
  ASSERT_TRUE(other);
  core::RunConfig cfg2 = apache_config();
  cfg2.seed = sim::Rng::mix(7, sim::Rng::hash(other->id()));
  core::FaultInjectionRun c(cfg2);
  (void)c.execute(*other);
  EXPECT_NE(c.interceptor().trace_digest(), a.interceptor().trace_digest());
}

// --- journal v4 round trip ----------------------------------------------------

TEST(ForensicsJournal, V4FieldsRoundTrip) {
  const std::string path = temp_path("forensics_v4.jsonl");
  std::filesystem::remove(path);
  exec::JournalKey key{"Apache1", 2, 3, 7, 42};
  const std::string config_text = "[test]\nworkload = Apache1\n";
  exec::RunJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(path, key, /*append=*/false, &error, config_text))
      << error;
  exec::JournalRecord rec;
  rec.index = 17;
  rec.fault_id = "ReadFile.hFile#1:zero";
  rec.fn_called = true;
  rec.run_line = "ReadFile.hFile#1:zero 1 failure 0 123456 0 0 1";
  rec.exec_index = "a3f1c0de9b24e871/0/17";
  rec.trace_digest = 0x9b24e871a3f1c0deull;
  rec.call_context = "ReadFile@417#1/89abcdef01234567";
  journal.append(rec);

  const auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file) << error;
  EXPECT_EQ(file->version, 5u);
  EXPECT_EQ(file->config_text, config_text);
  ASSERT_EQ(file->records.size(), 1u);
  EXPECT_EQ(file->records[0].trace_digest, rec.trace_digest);
  EXPECT_EQ(file->records[0].call_context, rec.call_context);
}

TEST(ForensicsJournal, CampaignJournalCarriesConfigAndDigests) {
  const exec::JournalFile file = campaign_journal("forensics_cfg.jsonl", 1, false);
  EXPECT_EQ(file.version, 5u);
  // The embedded config parses back to the campaign's configuration.
  std::string error;
  const auto cfg = core::parse_config(file.config_text, &error);
  ASSERT_TRUE(cfg) << error;
  EXPECT_EQ(cfg->run.workload.name, "Apache1");
  EXPECT_EQ(cfg->campaign.seed, 7u);
  // Every executed record carries a trace digest; activated ones a context.
  std::size_t digests = 0, contexts = 0;
  for (const auto& rec : file.records) {
    if (rec.trace_digest != 0) ++digests;
    if (!rec.call_context.empty()) ++contexts;
  }
  EXPECT_GT(digests, 0u);
  EXPECT_GT(contexts, 0u);
}

// --- replay determinism (satellite 3: the forensics acceptance bar) ----------

void replay_whole_journal(const exec::JournalFile& file, const char* label) {
  std::string error;
  std::size_t failures_checked = 0;
  for (const exec::JournalRecord& rec : file.records) {
    const auto replay =
        forensics::replay_record(file, rec, forensics::ReplayOptions{}, &error);
    ASSERT_TRUE(replay) << label << ": " << error;
    EXPECT_TRUE(replay->outcome_match)
        << label << " record #" << rec.index << " fault " << rec.fault_id
        << ": journal " << replay->journal_outcome << " vs replay "
        << exec::outcome_label(replay->run.outcome);
    EXPECT_TRUE(replay->run_line_match)
        << label << " record #" << rec.index << ": " << rec.run_line << " vs "
        << replay->run_line;
    EXPECT_TRUE(replay->trace_digest_match)
        << label << " record #" << rec.index << " fault " << rec.fault_id;
    EXPECT_TRUE(replay->call_context_match)
        << label << " record #" << rec.index << ": \"" << rec.call_context
        << "\" vs \"" << replay->call_context << "\"";
    if (replay->journal_outcome == "failure") ++failures_checked;
  }
  EXPECT_GT(failures_checked, 0u)
      << label << ": sweep produced no failures to replay";
}

TEST(ForensicsReplay, MatchesJournalAtAnyJobsCount) {
  replay_whole_journal(campaign_journal("forensics_j1.jsonl", 1, false), "jobs=1");
  replay_whole_journal(campaign_journal("forensics_j2.jsonl", 2, false), "jobs=2");
  replay_whole_journal(campaign_journal("forensics_j8.jsonl", 8, false), "jobs=8");
}

TEST(ForensicsReplay, MatchesSnapshotModeJournal) {
  if (!snap::snapshots_supported()) GTEST_SKIP() << "no fork on this platform";
  replay_whole_journal(campaign_journal("forensics_snap.jsonl", 2, true),
                       "snapshots=on");
}

TEST(ForensicsReplay, MatchesDistributedJournal) {
  const std::string path = temp_path("forensics_dist.jsonl");
  std::filesystem::remove(path);
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 18;
  opt.journal_path = path;
  dist::DistOptions d;
  d.spawn_workers = 2;
  (void)dist::run_workload_set_distributed(apache_config(), opt, std::move(d));
  std::string error;
  const auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file) << error;
  replay_whole_journal(*file, "distributed");
}

TEST(ForensicsReplay, FindRecordBySelectorKinds) {
  const exec::JournalFile file = campaign_journal("forensics_find.jsonl", 1, false);
  ASSERT_FALSE(file.records.empty());
  const exec::JournalRecord& want = file.records.front();
  std::string error;

  EXPECT_EQ(forensics::find_record(file, want.exec_index, &error), &want);
  EXPECT_EQ(forensics::find_record(file, std::to_string(want.index), &error),
            &want);
  EXPECT_EQ(forensics::find_record(file, want.fault_id, &error), &want);
  EXPECT_EQ(forensics::find_record(file, "no-such-fault#9:zero", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ForensicsReplay, DetectsTamperedRunLine) {
  exec::JournalFile file = campaign_journal("forensics_tamper.jsonl", 1, false);
  // Find an activated failure and forge its outcome: replay must disagree.
  exec::JournalRecord* victim = nullptr;
  for (auto& rec : file.records) {
    if (rec.run_line.find(" failure ") != std::string::npos) victim = &rec;
  }
  ASSERT_NE(victim, nullptr);
  const std::size_t at = victim->run_line.find(" failure ");
  victim->run_line.replace(at, 9, " normal ");
  std::string error;
  const auto replay =
      forensics::replay_record(file, *victim, forensics::ReplayOptions{}, &error);
  ASSERT_TRUE(replay) << error;
  EXPECT_FALSE(replay->outcome_match);
  EXPECT_FALSE(replay->matches());
}

// --- repro minimisation -------------------------------------------------------

TEST(ForensicsMinimize, PreservesOutcomeAndShrinks) {
  const exec::JournalFile file = campaign_journal("forensics_min.jsonl", 1, false);
  const exec::JournalRecord* failing = nullptr;
  for (const auto& rec : file.records) {
    if (rec.run_line.find(" failure ") != std::string::npos) failing = &rec;
  }
  ASSERT_NE(failing, nullptr) << "sweep produced no failure to minimise";

  std::string error;
  const auto cfg = forensics::config_from_journal(file, nullptr, &error);
  ASSERT_TRUE(cfg) << error;
  const auto fault =
      inject::parse_fault_id(cfg->workload.target_image, failing->fault_id);
  ASSERT_TRUE(fault);

  const forensics::MinimizeResult res =
      forensics::minimize_repro(*cfg, file.key.seed, *fault, core::Outcome::kFailure);
  EXPECT_EQ(res.outcome, core::Outcome::kFailure);
  EXPECT_TRUE(res.reduced) << "no reduction axis preserved the failure";
  EXPECT_LE(res.sim_us_after, res.sim_us_before);
  EXPECT_GT(res.runs_tried, 1u);

  // The emitted config is runnable and still reproduces the classification
  // under the campaign's exact seed derivation.
  core::RunConfig rerun = res.minimal.run;
  rerun.seed = sim::Rng::mix(file.key.seed, sim::Rng::hash(fault->id()));
  const core::RunResult rr = core::execute_run(rerun, *fault);
  EXPECT_EQ(rr.outcome, core::Outcome::kFailure);
  // The fault must still FIRE in the minimal config — an outcome preserved
  // by timing out before the injection point reproduces nothing.
  EXPECT_TRUE(rr.activated);

  // And it round-trips through the config file format.
  const auto parsed = core::parse_config(core::serialize_config(res.minimal), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->run.client.max_attempts, res.minimal.run.client.max_attempts);
  EXPECT_EQ(parsed->run.client.response_timeout.count_micros(),
            res.minimal.run.client.response_timeout.count_micros());
}

// --- failure signatures -------------------------------------------------------

TEST(ForensicsSignature, DigestDependsOnEveryAxis) {
  forensics::SignatureKey key;
  key.fault_class = "file-handle:zero";
  key.call_context = "ReadFile@417#1/89abcdef01234567";
  key.outcome = "failure";
  key.span = "restart";
  const std::uint64_t base = forensics::signature_digest(key);
  for (std::string forensics::SignatureKey::* axis :
       {&forensics::SignatureKey::fault_class,
        &forensics::SignatureKey::call_context, &forensics::SignatureKey::outcome,
        &forensics::SignatureKey::span}) {
    forensics::SignatureKey other = key;
    other.*axis += "x";
    EXPECT_NE(forensics::signature_digest(other), base);
  }
  EXPECT_EQ(forensics::signature_id(key).size(), 16u);
}

TEST(ForensicsSignature, ClustersReconcileAgainstJournalTotals) {
  const exec::JournalFile file = campaign_journal("forensics_sig.jsonl", 2, false);
  const obs::fleet::FleetReport report = obs::fleet::build_report({file});

  ASSERT_FALSE(report.signatures.empty());
  std::uint64_t sum = 0;
  bool failures_lead = true;
  bool seen_non_failure = false;
  for (const auto& cluster : report.signatures) {
    sum += cluster.count;
    EXPECT_GE(cluster.campaigns, 1u);
    if (cluster.key.outcome != "failure") seen_non_failure = true;
    if (seen_non_failure && cluster.key.outcome == "failure") failures_lead = false;
  }
  // Exact reconciliation: every deduplicated record in exactly one cluster.
  EXPECT_EQ(sum, report.records);
  EXPECT_EQ(report.signature_runs, report.records);
  EXPECT_TRUE(failures_lead) << "ranking must list failure clusters first";
}

TEST(ForensicsSignature, StatusBoardJsonReconciles) {
  obs::fleet::StatusBoard board;
  obs::MetricsRegistry metrics;
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 12;
  opt.metrics = &metrics;
  opt.status = &board;
  const core::WorkloadSetResult set = core::run_workload_set(apache_config(), opt);

  const std::string json = board.signatures_json();
  // Total signature stampings == freshly executed runs (skipped/elided runs
  // never reach the board; they carry no interceptor state to fingerprint).
  const std::string needle = "\"total\":" + std::to_string(set.executed_runs);
  EXPECT_NE(json.find(needle), std::string::npos) << json;
  EXPECT_NE(json.find("\"signatures\":["), std::string::npos);
}

// --- foreign-record quarantine (satellite 2) ---------------------------------

TEST(ForensicsForeign, ReportExcludesAndCountsForeignDigests) {
  exec::JournalFile file = campaign_journal("forensics_foreign.jsonl", 1, false);
  ASSERT_GE(file.records.size(), 2u);
  const std::uint64_t native_records = file.records.size();
  // Tamper one record's execution index to name another campaign.
  obs::fleet::ExecutionIndex foreign;
  foreign.campaign_digest = 0xdeadbeefdeadbeefull;
  foreign.lease_id = 0;
  foreign.fault_index = file.records.back().index;
  file.records.back().exec_index = foreign.to_string();

  obs::MetricsRegistry metrics;
  const obs::fleet::FleetReport report = obs::fleet::build_report({file}, &metrics);
  EXPECT_EQ(report.foreign, 1u);
  EXPECT_EQ(report.records, native_records - 1);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].foreign, 1u);
  EXPECT_EQ(report.signature_runs, report.records);

  std::uint64_t counted = 0;
  for (const obs::MetricSample& s : metrics.snapshot()) {
    if (s.name == "dts_report_foreign_records_total") counted += s.counter_value;
  }
  EXPECT_EQ(counted, 1u);

  // The rendered report warns in both formats.
  EXPECT_NE(obs::fleet::render_report_markdown(report).find("foreign campaign"),
            std::string::npos);
  EXPECT_NE(obs::fleet::render_report_html(report).find("foreign campaign"),
            std::string::npos);
}

TEST(ForensicsForeign, ResumeSkipsForeignRecordAndStaysByteIdentical) {
  const std::string path = temp_path("forensics_foreign_resume.jsonl");
  std::filesystem::remove(path);
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 12;
  opt.journal_path = path;
  const std::string baseline =
      core::serialize_workload_set(core::run_workload_set(apache_config(), opt));

  // Rewrite one journaled record's xi to a foreign campaign digest.
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  bool tampered = false;
  for (auto& line : lines) {
    const std::size_t at = line.find("\"xi\":\"");
    if (at == std::string::npos || tampered) continue;
    line.replace(at + 6, 16, "deadbeefdeadbeef");
    tampered = true;
  }
  ASSERT_TRUE(tampered);
  std::ofstream out(path, std::ios::trunc);
  for (const auto& line : lines) out << line << "\n";
  out.close();

  // Resume: the foreign record must be skipped (and counted), its fault
  // re-executed, and the final output still byte-identical.
  obs::MetricsRegistry metrics;
  opt.resume = true;
  opt.metrics = &metrics;
  const std::string resumed =
      core::serialize_workload_set(core::run_workload_set(apache_config(), opt));
  EXPECT_EQ(resumed, baseline);
  std::uint64_t counted = 0;
  for (const obs::MetricSample& s : metrics.snapshot()) {
    if (s.name == "dts_report_foreign_records_total") counted += s.counter_value;
  }
  EXPECT_EQ(counted, 1u);
}

// --- HTML escaping (satellite 1) ---------------------------------------------

TEST(ForensicsReport, HtmlEscapesHostileStrings) {
  exec::JournalFile hostile;
  hostile.version = 3;
  hostile.key.workload = "<script>alert('x&\"y')</script>";
  hostile.key.middleware = 0;
  hostile.key.watchd_version = 1;
  hostile.key.seed = 1;
  hostile.key.fault_count = 1;
  exec::JournalRecord rec;
  rec.index = 0;
  rec.fault_id = "Evil<Fn>.arg#1:zero";
  rec.run_line = "unparsable";
  hostile.records.push_back(rec);

  const obs::fleet::FleetReport report = obs::fleet::build_report({hostile});
  const std::string html = obs::fleet::render_report_html(report);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("&#39;"), std::string::npos);
  EXPECT_NE(html.find("&quot;"), std::string::npos);
  EXPECT_NE(html.find("&amp;"), std::string::npos);
  // The unparsable record still lands in a cluster (reconciliation).
  EXPECT_EQ(report.signature_runs, report.records);
}

}  // namespace
}  // namespace dts
