// Property-style tests (parameterized gtest sweeps) over the simulator's
// invariants: memory-safety bookkeeping, fault-id round trips, run
// determinism, outcome-classification consistency, serialization.
#include <gtest/gtest.h>

#include <map>

#include "core/campaign.h"
#include "core/report.h"
#include "inject/fault_list.h"
#include "ntsim/filesystem.h"
#include "ntsim/memory.h"

namespace dts {
namespace {

// ---------------------------------------------------------------------------
// P1: VirtualMemory bookkeeping survives arbitrary alloc/free/write storms.
// ---------------------------------------------------------------------------
class MemoryChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryChaos, BookkeepingInvariants) {
  sim::Rng rng{GetParam()};
  nt::VirtualMemory vm;
  std::map<nt::Word, std::pair<nt::Word, char>> live;  // base -> (size, fill)
  std::uint64_t expected_bytes = 0;

  for (int step = 0; step < 600; ++step) {
    const int action = static_cast<int>(rng.uniform(0, 2));
    if (action == 0 || live.empty()) {
      const auto size = static_cast<nt::Word>(rng.uniform(1, 2000));
      const char fill = static_cast<char>('a' + rng.uniform(0, 25));
      const nt::Ptr p = vm.alloc(size);
      vm.write_bytes(p, std::string(size, fill));
      ASSERT_FALSE(live.contains(p.addr));  // no overlap with a live base
      live[p.addr] = {size, fill};
      expected_bytes += size;
    } else if (action == 1) {
      // Free a random live block.
      auto it = live.begin();
      std::advance(it, rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
      ASSERT_TRUE(vm.free(nt::Ptr{it->first}));
      EXPECT_THROW(vm.read_u32(nt::Ptr{it->first}), nt::AccessViolation);
      expected_bytes -= it->second.first;
      live.erase(it);
    } else {
      // Verify a random live block still holds its fill pattern.
      auto it = live.begin();
      std::advance(it, rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [size, fill] = it->second;
      const std::string data = vm.read_bytes(nt::Ptr{it->first}, size);
      EXPECT_EQ(data, std::string(size, fill));
    }
    ASSERT_EQ(vm.bytes_in_use(), expected_bytes);
    ASSERT_EQ(vm.live_blocks(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryChaos, ::testing::Values(1, 2, 3, 17, 99));

// ---------------------------------------------------------------------------
// P2: every generated fault id round-trips through the parser, and ids are
// unique across the whole sweep.
// ---------------------------------------------------------------------------
TEST(FaultIdProperty, AllSweepIdsRoundTripUniquely) {
  const inject::FaultList list = inject::FaultList::full_sweep("img.exe", 2);
  std::set<std::string> seen;
  for (const auto& fault : list.faults) {
    const std::string id = fault.id();
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    const auto& info = nt::Kernel32Registry::instance().info(fault.fn);
    if (!info.implemented) continue;  // catalogue-only names don't parse back
    auto parsed = inject::parse_fault_id("img.exe", id);
    ASSERT_TRUE(parsed.has_value()) << id;
    EXPECT_EQ(*parsed, fault) << id;
  }
}

// ---------------------------------------------------------------------------
// P3: filesystem path normalization is idempotent and fold is stable.
// ---------------------------------------------------------------------------
class PathProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PathProperty, NormalizeIdempotent) {
  const auto once = nt::Filesystem::normalize(GetParam());
  ASSERT_TRUE(once.has_value());
  const auto twice = nt::Filesystem::normalize(*once);
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(*once, *twice);
  EXPECT_EQ(nt::Filesystem::fold(*once), nt::Filesystem::fold(*twice));
}

INSTANTIATE_TEST_SUITE_P(Paths, PathProperty,
                         ::testing::Values("C:\\a\\b\\c", "c:/x//y/./z", "C:\\A\\..\\b",
                                           "C:/Inetpub/wwwroot/index.html",
                                           "C:\\WINNT\\system32\\..\\system32\\f.txt"));

// ---------------------------------------------------------------------------
// P4: fault-injection runs are deterministic and their classification is
// internally consistent, across fault types and functions.
// ---------------------------------------------------------------------------
struct SweepCase {
  const char* workload;
  const char* fault_id;
};

class RunConsistency : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RunConsistency, DeterministicAndConsistent) {
  const auto& p = GetParam();
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(p.workload);
  cfg.middleware = mw::MiddlewareKind::kWatchd;
  cfg.seed = 21;
  auto spec = inject::parse_fault_id(cfg.workload.target_image, p.fault_id);
  ASSERT_TRUE(spec.has_value());

  const core::RunResult a = core::execute_run(cfg, *spec);
  const core::RunResult b = core::execute_run(cfg, *spec);

  // Determinism: identical seed and fault => identical observable result.
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.activated, b.activated);
  EXPECT_EQ(a.response_time.count_micros(), b.response_time.count_micros());
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.retries, b.retries);

  // Classification consistency.
  switch (a.outcome) {
    case core::Outcome::kNormalSuccess:
      EXPECT_EQ(a.retries, 0);
      EXPECT_EQ(a.restarts, 0);
      EXPECT_TRUE(a.client_finished);
      break;
    case core::Outcome::kRestartSuccess:
      EXPECT_GT(a.restarts, 0);
      EXPECT_EQ(a.retries, 0);
      break;
    case core::Outcome::kRestartRetrySuccess:
      EXPECT_GT(a.restarts, 0);
      EXPECT_GT(a.retries, 0);
      break;
    case core::Outcome::kRetrySuccess:
      EXPECT_GT(a.retries, 0);
      EXPECT_EQ(a.restarts, 0);
      break;
    case core::Outcome::kFailure:
      break;  // any retry/restart combination can precede a failure
  }
  // A fault that never activated cannot have hurt the run.
  if (!a.activated) EXPECT_EQ(a.outcome, core::Outcome::kNormalSuccess);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, RunConsistency,
    ::testing::Values(SweepCase{"IIS", "GetStartupInfoA.lpStartupInfo#1:zero"},
                      SweepCase{"IIS", "GetStartupInfoA.lpStartupInfo#1:ones"},
                      SweepCase{"IIS", "GetStartupInfoA.lpStartupInfo#1:flip"},
                      SweepCase{"IIS", "CreateSemaphoreA.lInitialCount#1:ones"},
                      SweepCase{"IIS", "ReadFile.nNumberOfBytesToRead#1:zero"},
                      SweepCase{"IIS", "HeapCreate.dwInitialSize#1:ones"},
                      SweepCase{"Apache1", "CreateProcessA.lpCommandLine#1:flip"},
                      SweepCase{"Apache1", "WaitForSingleObject.hHandle#1:ones"},
                      SweepCase{"Apache2", "CreatePipe.hReadPipe#1:flip"},
                      SweepCase{"Apache2", "GetFileAttributesA.lpFileName#1:zero"},
                      SweepCase{"SQL", "ReadFileEx.nNumberOfBytesToRead#1:zero"},
                      SweepCase{"SQL", "CreateEventA.bManualReset#1:ones"}),
    [](const auto& info) {
      std::string name = std::string(info.param.workload) + "_" + info.param.fault_id;
      for (char& c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// P5: campaign serialization round-trips and preserves every aggregate.
// ---------------------------------------------------------------------------
class CampaignRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignRoundTrip, PreservesAggregates) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.middleware = mw::MiddlewareKind::kMscs;
  core::CampaignOptions opt;
  opt.seed = GetParam();
  opt.max_faults = 15;
  const core::WorkloadSetResult original = core::run_workload_set(cfg, opt);

  std::string error;
  auto restored = core::deserialize_workload_set(core::serialize_workload_set(original), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->runs.size(), original.runs.size());
  EXPECT_EQ(restored->activated_faults(), original.activated_faults());
  EXPECT_EQ(restored->activated_functions, original.activated_functions);
  EXPECT_EQ(restored->outcome_counts(), original.outcome_counts());
  EXPECT_EQ(restored->label(), original.label());
  for (std::size_t i = 0; i < original.runs.size(); ++i) {
    EXPECT_EQ(restored->runs[i].fault, original.runs[i].fault);
    EXPECT_EQ(restored->runs[i].outcome, original.runs[i].outcome);
    EXPECT_EQ(restored->runs[i].response_time.count_micros(),
              original.runs[i].response_time.count_micros());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignRoundTrip, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// P6: the KERNEL32 registry is internally consistent.
// ---------------------------------------------------------------------------
TEST(RegistryProperty, NamesUniqueAndLookupsAgree) {
  const auto& reg = nt::Kernel32Registry::instance();
  std::set<std::string_view> names;
  std::size_t zero_param = 0;
  for (const auto& info : reg.all()) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate export " << info.name;
    EXPECT_EQ(reg.by_name(info.name), &info);
    EXPECT_LE(info.param_count(), nt::kMaxSyscallArgs);
    if (info.params.empty()) ++zero_param;
  }
  EXPECT_EQ(zero_param, reg.zero_param_functions());
  EXPECT_EQ(reg.total_functions() - zero_param, reg.injectable_functions());
  // Every implemented enum value maps to an implemented catalogue entry.
  for (std::uint16_t i = 0; i < nt::kImplementedFunctionCount; ++i) {
    EXPECT_TRUE(reg.info(static_cast<nt::Fn>(i)).implemented);
  }
}

}  // namespace
}  // namespace dts
