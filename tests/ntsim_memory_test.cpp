// Tests for the simulated virtual memory and filesystem.
#include <gtest/gtest.h>

#include "ntsim/filesystem.h"
#include "ntsim/memory.h"

namespace dts::nt {
namespace {

TEST(VirtualMemory, AllocWriteRead) {
  VirtualMemory vm;
  Ptr p = vm.alloc(100);
  EXPECT_GE(p.addr, VirtualMemory::kBaseAddress);
  vm.write_bytes(p, "hello");
  EXPECT_EQ(vm.read_bytes(p, 5), "hello");
  EXPECT_EQ(vm.live_blocks(), 1u);
  EXPECT_EQ(vm.bytes_in_use(), 100u);
}

TEST(VirtualMemory, ZeroInitialized) {
  VirtualMemory vm;
  Ptr p = vm.alloc(16);
  for (Word i = 0; i < 16; ++i) EXPECT_EQ(vm.read_bytes(p.offset(i), 1)[0], '\0');
}

TEST(VirtualMemory, FreeInvalidatesAccess) {
  VirtualMemory vm;
  Ptr p = vm.alloc(64);
  EXPECT_TRUE(vm.free(p));
  EXPECT_FALSE(vm.free(p));  // double free reports failure
  EXPECT_THROW(vm.read_u32(p), AccessViolation);
}

TEST(VirtualMemory, NullPointerFaults) {
  VirtualMemory vm;
  EXPECT_THROW(vm.read_u32(Ptr{0}), AccessViolation);
  EXPECT_THROW(vm.write_u32(Ptr{0}, 1), AccessViolation);
}

TEST(VirtualMemory, AllOnesPointerFaults) {
  VirtualMemory vm;
  EXPECT_THROW(vm.read_u32(Ptr{0xFFFFFFFF}), AccessViolation);
}

TEST(VirtualMemory, FlippedPointerFaults) {
  // Bit-flipping a valid user-space pointer lands in kernel space.
  VirtualMemory vm;
  Ptr p = vm.alloc(64);
  const Ptr flipped{~p.addr};
  EXPECT_GE(flipped.addr, VirtualMemory::kUserSpaceLimit);
  EXPECT_THROW(vm.read_u32(flipped), AccessViolation);
}

TEST(VirtualMemory, OutOfBlockAccessFaults) {
  VirtualMemory vm;
  Ptr p = vm.alloc(8);
  EXPECT_NO_THROW(vm.read_bytes(p, 8));
  EXPECT_THROW(vm.read_bytes(p, 9), AccessViolation);
  EXPECT_THROW(vm.read_u32(p.offset(6)), AccessViolation);
}

TEST(VirtualMemory, GuardGapsBetweenBlocks) {
  VirtualMemory vm;
  Ptr a = vm.alloc(16);
  Ptr b = vm.alloc(16);
  EXPECT_GT(b.addr, a.addr + 16);
  EXPECT_THROW(vm.read_u32(Ptr{a.addr + 16 + 4}), AccessViolation);
}

TEST(VirtualMemory, InteriorPointersValid) {
  VirtualMemory vm;
  Ptr p = vm.alloc(100);
  EXPECT_TRUE(vm.valid(p.offset(50), 50));
  EXPECT_FALSE(vm.valid(p.offset(50), 51));
}

TEST(VirtualMemory, CStrRoundTrip) {
  VirtualMemory vm;
  Ptr p = vm.alloc_cstr("GET /index.html HTTP/1.0");
  EXPECT_EQ(vm.read_cstr(p), "GET /index.html HTTP/1.0");
}

TEST(VirtualMemory, CStrRunsOffBlockFaults) {
  VirtualMemory vm;
  Ptr p = vm.alloc(4);
  vm.write_bytes(p, "abcd");  // no NUL inside the block
  EXPECT_THROW(vm.read_cstr(p), AccessViolation);
}

TEST(VirtualMemory, HugeAllocThrowsBadAlloc) {
  VirtualMemory vm;
  EXPECT_THROW(vm.alloc(0xFFFFFFFF), std::bad_alloc);
}

TEST(VirtualMemory, U32RoundTrip) {
  VirtualMemory vm;
  Ptr p = vm.alloc(8);
  vm.write_u32(p, 0xDEADBEEF);
  EXPECT_EQ(vm.read_u32(p), 0xDEADBEEFu);
}

// ---------------------------------------------------------------- filesystem

TEST(Filesystem, NormalizePaths) {
  EXPECT_EQ(Filesystem::normalize("C:\\a\\b"), "C:\\a\\b");
  EXPECT_EQ(Filesystem::normalize("C:/a//b/"), "C:\\a\\b");
  EXPECT_EQ(Filesystem::normalize("c:\\a\\.\\b\\..\\c"), "c:\\a\\c");
  EXPECT_EQ(Filesystem::normalize(""), std::nullopt);
  EXPECT_EQ(Filesystem::normalize("relative\\path"), std::nullopt);
  EXPECT_EQ(Filesystem::normalize("C:\\a\\..\\.."), std::nullopt);
}

TEST(Filesystem, PutGetRoundTrip) {
  Filesystem fs;
  fs.put_file("C:\\inetpub\\wwwroot\\index.html", "<html>hi</html>");
  EXPECT_EQ(fs.get_file("C:\\INETPUB\\WWWROOT\\INDEX.HTML"), "<html>hi</html>");
  EXPECT_TRUE(fs.is_file("c:/inetpub/wwwroot/index.html"));
  EXPECT_TRUE(fs.is_directory("C:\\inetpub"));
}

TEST(Filesystem, OpenDispositions) {
  Filesystem fs;
  fs.put_file("C:\\x\\f.txt", "data");
  std::string canon;
  bool created = false;

  EXPECT_EQ(fs.open("C:\\x\\f.txt", kGenericRead, kOpenExisting, &canon, &created),
            Win32Error::kSuccess);
  EXPECT_FALSE(created);

  EXPECT_EQ(fs.open("C:\\x\\nope.txt", kGenericRead, kOpenExisting, &canon, &created),
            Win32Error::kFileNotFound);

  EXPECT_EQ(fs.open("C:\\x\\f.txt", kGenericWrite, kCreateNew, &canon, &created),
            Win32Error::kFileExists);

  EXPECT_EQ(fs.open("C:\\x\\new.txt", kGenericWrite, kCreateNew, &canon, &created),
            Win32Error::kSuccess);
  EXPECT_TRUE(created);

  // CREATE_ALWAYS truncates.
  EXPECT_EQ(fs.open("C:\\x\\f.txt", kGenericWrite, kCreateAlways, &canon, &created),
            Win32Error::kSuccess);
  EXPECT_EQ(fs.get_file("C:\\x\\f.txt"), "");
}

TEST(Filesystem, OpenMissingParentFails) {
  Filesystem fs;
  std::string canon;
  EXPECT_EQ(fs.open("C:\\no\\dir\\f.txt", kGenericWrite, kCreateAlways, &canon, nullptr),
            Win32Error::kPathNotFound);
}

TEST(Filesystem, ReadWriteOffsets) {
  Filesystem fs;
  fs.put_file("C:\\f", "0123456789");
  const std::string key = Filesystem::fold(*Filesystem::normalize("C:\\f"));
  std::string out;
  EXPECT_EQ(fs.read(key, 3, 4, &out), Win32Error::kSuccess);
  EXPECT_EQ(out, "3456");
  EXPECT_EQ(fs.read(key, 100, 4, &out), Win32Error::kSuccess);
  EXPECT_EQ(out, "");  // EOF
  EXPECT_EQ(fs.write(key, 8, "XYZ"), Win32Error::kSuccess);
  EXPECT_EQ(fs.get_file("C:\\f"), "01234567XYZ");
}

TEST(Filesystem, ListAndMatch) {
  Filesystem fs;
  fs.put_file("C:\\web\\a.html", "");
  fs.put_file("C:\\web\\b.html", "");
  fs.put_file("C:\\web\\c.gif", "");
  fs.mkdirs("C:\\web\\sub");
  auto all = fs.list("C:\\web");
  EXPECT_EQ(all.size(), 4u);
  auto html = fs.list("C:\\web", "*.html");
  EXPECT_EQ(html.size(), 2u);
  EXPECT_TRUE(Filesystem::match("*.HTML", "index.html"));
  EXPECT_TRUE(Filesystem::match("a?c", "abc"));
  EXPECT_FALSE(Filesystem::match("a?c", "ac"));
  EXPECT_TRUE(Filesystem::match("*", "anything"));
  EXPECT_FALSE(Filesystem::match("*.gif", "x.html"));
}

TEST(Filesystem, MoveCopyDelete) {
  Filesystem fs;
  fs.put_file("C:\\a\\src.txt", "content");
  fs.mkdirs("C:\\b");
  EXPECT_EQ(fs.copy("C:\\a\\src.txt", "C:\\b\\copy.txt", true), Win32Error::kSuccess);
  EXPECT_EQ(fs.copy("C:\\a\\src.txt", "C:\\b\\copy.txt", true), Win32Error::kFileExists);
  EXPECT_EQ(fs.move("C:\\a\\src.txt", "C:\\b\\moved.txt"), Win32Error::kSuccess);
  EXPECT_FALSE(fs.exists("C:\\a\\src.txt"));
  EXPECT_EQ(fs.get_file("C:\\b\\moved.txt"), "content");
  EXPECT_EQ(fs.remove("C:\\b\\moved.txt"), Win32Error::kSuccess);
  EXPECT_EQ(fs.remove("C:\\b\\moved.txt"), Win32Error::kFileNotFound);
}

TEST(Filesystem, RmdirRules) {
  Filesystem fs;
  fs.put_file("C:\\d\\f.txt", "");
  EXPECT_EQ(fs.rmdir("C:\\d"), Win32Error::kDirNotEmpty);
  fs.remove("C:\\d\\f.txt");
  EXPECT_EQ(fs.rmdir("C:\\d"), Win32Error::kSuccess);
  EXPECT_EQ(fs.rmdir("C:\\d"), Win32Error::kPathNotFound);
}

}  // namespace
}  // namespace dts::nt
