// Tests for the pluggable fault-model subsystem (src/fault/): fault-id
// round-trips for every operator and temporal mode, ModelSet parsing, the
// byte-identity guarantee of the paper enumerator against the legacy sweep,
// serialization round-trips of model-bearing fault lists and plans,
// schedule-independent campaign output per model, replay determinism of
// model-annotated journals, and per-model pruning soundness. Labelled
// `fault` in CTest (the asan/tsan presets include it).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/config.h"
#include "exec/journal.h"
#include "fault/model.h"
#include "forensics/replay.h"
#include "inject/fault_list.h"
#include "plan/plan.h"

namespace dts {
namespace {

using inject::FaultSpec;
using inject::FaultType;
using inject::Temporal;

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  return cfg;
}

const std::string& apache_image() {
  static const std::string image = apache_config().workload.target_image;
  return image;
}

FaultSpec make_spec(nt::Fn fn, int param, int inv, FaultType type,
                    Temporal temporal = Temporal::kTransient, int period = 0) {
  FaultSpec f;
  f.target_image = apache_image();
  f.fn = fn;
  f.param_index = param;
  f.invocation = inv;
  f.type = type;
  f.temporal = temporal;
  f.period = period;
  return f;
}

// --- fault-id grammar --------------------------------------------------------

TEST(FaultModel, OperatorIdsRoundTrip) {
  const struct {
    FaultSpec spec;
    const char* id;
  } cases[] = {
      {make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kNoLoad),
       "WriteFile.nNumberOfBytesToWrite#1:noload"},
      {make_spec(nt::Fn::CreateFileA, 0, 1, FaultType::kCorruptPointer),
       "CreateFileA.lpFileName#1:corruptptr"},
      {make_spec(nt::Fn::WriteFile, -1, 1, FaultType::kNoStore), "WriteFile.ret#1:nostore"},
      {make_spec(nt::Fn::WriteFile, -1, 2, FaultType::kFlipBranch),
       "WriteFile.ret#2:flipbranch"},
      {make_spec(nt::Fn::HeapAlloc, -1, 1, FaultType::kErrNoMemory),
       "HeapAlloc.ret#1:errnomem"},
      {make_spec(nt::Fn::CreateFileA, -1, 1, FaultType::kErrNoHandles),
       "CreateFileA.ret#1:errnohandles"},
      {make_spec(nt::Fn::WriteFile, -1, 1, FaultType::kErrDiskFull),
       "WriteFile.ret#1:errdiskfull"},
      {make_spec(nt::Fn::ReadFile, -1, 1, FaultType::kDelay), "ReadFile.ret#1:delay"},
      {make_spec(nt::Fn::ReadFile, -1, 1, FaultType::kDrop), "ReadFile.ret#1:drop"},
      {make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kZero, Temporal::kIntermittent, 2),
       "WriteFile.nNumberOfBytesToWrite#1:zero@every2"},
      {make_spec(nt::Fn::WriteFile, 2, 3, FaultType::kFlip, Temporal::kIntermittent, 5),
       "WriteFile.nNumberOfBytesToWrite#3:flip@every5"},
      {make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kOnes, Temporal::kPersistent),
       "WriteFile.nNumberOfBytesToWrite#1:ones@sticky"},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(c.spec.id(), c.id);
    const auto parsed = inject::parse_fault_id(apache_image(), c.id);
    ASSERT_TRUE(parsed.has_value()) << c.id;
    EXPECT_EQ(*parsed, c.spec) << c.id;
  }
}

TEST(FaultModel, ParseRejectsMalformedModelIds) {
  const char* bad[] = {
      "WriteFile.ret#1:zero",                       // param operator on the result
      "WriteFile.nNumberOfBytesToWrite#1:drop",     // result operator on a param
      "WriteFile.nNumberOfBytesToWrite#1:noload@",  // empty temporal suffix
      "WriteFile.nNumberOfBytesToWrite#1:zero@every1",   // period must be >= 2
      "WriteFile.nNumberOfBytesToWrite#1:zero@every0",   //
      "WriteFile.nNumberOfBytesToWrite#1:zero@everyx",   // non-numeric period
      "WriteFile.nNumberOfBytesToWrite#1:zero@forever",  // unknown mode
      "WriteFile.nNumberOfBytesToWrite#1:zero@sticky2",  //
      "WriteFile.ret#0:drop",                            // invocation >= 1
      "WriteFile.ret#1:melt",                            // unknown operator
  };
  for (const char* id : bad) {
    EXPECT_FALSE(inject::parse_fault_id(apache_image(), id).has_value()) << id;
  }
}

TEST(FaultModel, CorruptionOperators) {
  EXPECT_EQ(inject::corrupt(0x12345678u, FaultType::kNoLoad), 0xCCCCCCCCu);
  EXPECT_EQ(inject::corrupt(0x40B350u, FaultType::kCorruptPointer), 0x40B354u);
  // Result-side operators act on the completion, not the word.
  EXPECT_EQ(inject::corrupt(0x1234u, FaultType::kDrop), 0x1234u);
  EXPECT_EQ(inject::corrupt(0x1234u, FaultType::kErrNoMemory), 0x1234u);
}

TEST(FaultModel, AnnotationNamesOperatorFamilyAndTemporal) {
  EXPECT_EQ(fault::model_annotation(make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kZero)),
            "");  // default axis elided (journal stays v4-shaped)
  EXPECT_EQ(fault::model_annotation(make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kZero,
                                              Temporal::kIntermittent, 2)),
            "paper:every2");
  EXPECT_EQ(fault::model_annotation(make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kOnes,
                                              Temporal::kPersistent)),
            "paper:sticky");
  EXPECT_EQ(fault::model_annotation(make_spec(nt::Fn::WriteFile, 2, 1, FaultType::kNoLoad)),
            "mutation:transient");
  EXPECT_EQ(fault::model_annotation(make_spec(nt::Fn::WriteFile, -1, 1, FaultType::kDrop)),
            "oserror:transient");
}

// --- model selection ---------------------------------------------------------

TEST(FaultModel, ModelSetParsesCsvAndRejectsUnknown) {
  std::string error;
  auto set = fault::ModelSet::parse("", &error);
  ASSERT_TRUE(set);
  EXPECT_TRUE(set->is_paper_default());

  set = fault::ModelSet::parse(" oserror , paper , oserror ", &error);
  ASSERT_TRUE(set);
  EXPECT_EQ(set->to_string(), "oserror,paper");  // first-mention order, deduped
  EXPECT_FALSE(set->is_paper_default());

  EXPECT_FALSE(fault::ModelSet::parse("paper,bogus", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_NE(error.find("paper, mutation, oserror, temporal"), std::string::npos)
      << "the diagnostic must name the valid model set: " << error;
}

TEST(FaultModel, ConfigRoundTripsModelsAndElidesDefault) {
  std::string error;
  auto cfg = core::parse_config(
      "[test]\nworkload = Apache1\nmodels = oserror,temporal\n", &error);
  ASSERT_TRUE(cfg) << error;
  EXPECT_EQ(cfg->campaign.models, "oserror,temporal");
  EXPECT_NE(core::serialize_config(*cfg).find("models = oserror,temporal"),
            std::string::npos);

  // Spelling the default out loud canonicalizes away: the serialized config
  // (and thus the result cache key and journal header) is byte-identical to
  // one that never mentioned models at all.
  auto dflt = core::parse_config("[test]\nworkload = Apache1\nmodels = paper\n", &error);
  ASSERT_TRUE(dflt) << error;
  EXPECT_EQ(dflt->campaign.models, "");
  auto bare = core::parse_config("[test]\nworkload = Apache1\n", &error);
  ASSERT_TRUE(bare) << error;
  EXPECT_EQ(core::serialize_config(*dflt), core::serialize_config(*bare));

  EXPECT_FALSE(core::parse_config("[test]\nworkload = Apache1\nmodels = bogus\n", &error));
}

// --- sweep enumeration -------------------------------------------------------

// The registry's paper enumerator is the legacy sweep, byte for byte — the
// planner cache key, journal resume and distributed digests all hang off
// this order.
TEST(FaultModel, PaperSweepByteIdenticalToLegacy) {
  const auto def = fault::ModelSet::paper_default();
  EXPECT_EQ(fault::build_sweep(apache_image(), def, nullptr, 1).serialize(),
            inject::FaultList::full_sweep(apache_image()).serialize());
  EXPECT_EQ(fault::build_sweep(apache_image(), def, nullptr, 3).serialize(),
            inject::FaultList::full_sweep(apache_image(), 3).serialize());

  const std::set<nt::Fn> fns = {nt::Fn::ReadFile, nt::Fn::WriteFile, nt::Fn::CreateFileA};
  EXPECT_EQ(fault::build_sweep(apache_image(), def, &fns, 1).serialize(),
            inject::FaultList::for_functions(apache_image(), fns).serialize());
}

TEST(FaultModel, SweepSerializationRoundTripsPerModel) {
  // Restrict to implemented functions: FaultList::parse (the user-facing fault
  // list reader) rejects ids naming registry stubs, so only this subset of a
  // sweep is expected to round-trip through it.
  const std::set<nt::Fn> fns = {nt::Fn::ReadFile, nt::Fn::WriteFile, nt::Fn::CreateFileA,
                                nt::Fn::HeapAlloc, nt::Fn::CreateProcessA};
  for (fault::Model m : fault::kAllModels) {
    fault::ModelSet set{{m}};
    const inject::FaultList list = fault::build_sweep(apache_image(), set, &fns, 2);
    ASSERT_FALSE(list.faults.empty()) << fault::to_string(m);
    const std::string text = list.serialize();
    std::string error;
    const auto reloaded = inject::FaultList::parse(apache_image(), text, &error);
    ASSERT_TRUE(reloaded.has_value()) << fault::to_string(m) << ": " << error;
    EXPECT_EQ(reloaded->serialize(), text) << fault::to_string(m);
  }
}

TEST(FaultModel, ModelSweepsTargetTheRightAxes) {
  const std::set<nt::Fn> fns = {nt::Fn::WriteFile};
  const auto param_count = nt::Kernel32Registry::instance().info(nt::Fn::WriteFile).param_count();

  const auto oserror =
      fault::build_sweep(apache_image(), fault::ModelSet{{fault::Model::kOsError}}, &fns, 1);
  EXPECT_EQ(oserror.faults.size(), 5u);  // errnomem/errnohandles/errdiskfull/delay/drop
  for (const auto& f : oserror.faults) EXPECT_EQ(f.param_index, -1) << f.id();

  const auto temporal =
      fault::build_sweep(apache_image(), fault::ModelSet{{fault::Model::kTemporal}}, &fns, 1);
  EXPECT_EQ(temporal.faults.size(), static_cast<std::size_t>(param_count) * 3 * 2);
  for (const auto& f : temporal.faults) {
    EXPECT_NE(f.temporal, Temporal::kTransient) << f.id();
  }

  const auto mutation =
      fault::build_sweep(apache_image(), fault::ModelSet{{fault::Model::kMutation}}, &fns, 1);
  // noload per param + corruptptr on pointer-like params + nostore/flipbranch.
  EXPECT_GE(mutation.faults.size(), static_cast<std::size_t>(param_count) + 2);
}

TEST(FaultModel, PlanCacheRoundTripsModelFaults) {
  core::CampaignOptions opt;
  opt.seed = 1;
  opt.models = "oserror,temporal";
  opt.max_faults = 40;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  const plan::Plan p = core::build_campaign_plan(apache_config(), opt);
  ASSERT_FALSE(p.entries.empty());

  const std::string text = p.serialize();
  std::string error;
  const auto reloaded = plan::Plan::parse(text, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->serialize(), text);
}

// --- campaign determinism ----------------------------------------------------

// The subsystem's acceptance bar: every model family serializes
// byte-identically at any jobs count, with snapshots on or off.
TEST(FaultModel, CampaignByteIdenticalAcrossJobsAndSnapshotsPerModel) {
  for (const char* models : {"mutation", "oserror", "temporal"}) {
    core::CampaignOptions opt;
    opt.seed = 7;
    opt.models = models;
    opt.max_faults = 10;

    opt.jobs = 1;
    const std::string serial =
        core::serialize_workload_set(core::run_workload_set(apache_config(), opt));
    opt.jobs = 2;
    const std::string two =
        core::serialize_workload_set(core::run_workload_set(apache_config(), opt));
    opt.jobs = 8;
    const std::string eight =
        core::serialize_workload_set(core::run_workload_set(apache_config(), opt));
    opt.jobs = 2;
    opt.snapshots = true;
    const std::string snapped =
        core::serialize_workload_set(core::run_workload_set(apache_config(), opt));

    EXPECT_EQ(serial, two) << models;
    EXPECT_EQ(serial, eight) << models;
    EXPECT_EQ(serial, snapped) << models;
  }
}

// --- pruning soundness -------------------------------------------------------

// Per-model regression of the planner's soundness guarantee: a planned
// campaign reproduces the exhaustive outcome counts exactly. This is where a
// wrongly generalized inert_corruption rule (which only holds for transient
// parameter corruptions) would show up.
TEST(FaultModel, PrunedSweepReproducesExhaustivePerModel) {
  for (const char* models : {"mutation", "oserror", "temporal"}) {
    core::CampaignOptions opt;
    opt.seed = 1;
    opt.models = models;

    const core::WorkloadSetResult exhaustive = core::run_workload_set(apache_config(), opt);

    opt.plan.mode = plan::PlanOptions::Mode::kAuto;
    const core::WorkloadSetResult planned = core::run_workload_set(apache_config(), opt);

    EXPECT_EQ(planned.outcome_counts(), exhaustive.outcome_counts()) << models;
    EXPECT_EQ(planned.activated_faults(), exhaustive.activated_faults()) << models;
    EXPECT_EQ(planned.failures_with_response(), exhaustive.failures_with_response())
        << models;
    EXPECT_EQ(planned.failures_without_response(), exhaustive.failures_without_response())
        << models;
  }
}

// --- journal + replay --------------------------------------------------------

TEST(FaultModel, JournalCarriesModelAnnotationAndReplayMatches) {
  const std::string path = temp_path("fault_model_journal.jsonl");
  std::filesystem::remove(path);
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.models = "oserror";
  opt.journal_path = path;
  (void)core::run_workload_set(apache_config(), opt);

  std::string error;
  const auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file) << error;
  ASSERT_FALSE(file->records.empty());

  std::size_t failures = 0;
  for (const auto& rec : file->records) {
    EXPECT_EQ(rec.model, "oserror:transient") << rec.fault_id;
    const auto replay =
        forensics::replay_record(*file, rec, forensics::ReplayOptions{}, &error);
    ASSERT_TRUE(replay) << rec.fault_id << ": " << error;
    EXPECT_TRUE(replay->outcome_match) << rec.fault_id;
    EXPECT_TRUE(replay->run_line_match) << rec.fault_id;
    EXPECT_TRUE(replay->trace_digest_match) << rec.fault_id;
    EXPECT_TRUE(replay->call_context_match) << rec.fault_id;
    if (replay->journal_outcome == "failure") ++failures;
  }
  // The oserror sweep drops WriteFile completions on a workload that writes:
  // at least one failing run exercises the replay-match path end to end.
  EXPECT_GT(failures, 0u);
}

TEST(FaultModel, ReplayRefusesRecordsWithMissingOrWrongModelField) {
  // Hand-build a journal whose record names a non-default fault but carries
  // no "fm" field — the shape a pre-v5 writer would have produced.
  const std::string path = temp_path("fault_model_missing_fm.jsonl");
  std::filesystem::remove(path);
  exec::JournalKey key;
  key.workload = "Apache1";
  key.middleware = 0;
  key.watchd_version = 3;
  key.seed = 7;
  key.fault_count = 1;
  exec::RunJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(path, key, /*append=*/false, &error)) << error;
  exec::JournalRecord rec;
  rec.index = 0;
  rec.fault_id = "WriteFile.ret#1:drop";
  rec.fn_called = true;
  rec.run_line = "WriteFile.ret#1:drop 1 failure 0 150016653 0 4 0";
  journal.append(rec);

  auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file) << error;
  ASSERT_EQ(file->records.size(), 1u);

  EXPECT_FALSE(forensics::replay_record(*file, file->records[0],
                                        forensics::ReplayOptions{}, &error));
  EXPECT_NE(error.find("predates"), std::string::npos) << error;

  // And an annotation that contradicts the fault id is refused too.
  file->records[0].model = "paper:transient";
  EXPECT_FALSE(forensics::replay_record(*file, file->records[0],
                                        forensics::ReplayOptions{}, &error));
  EXPECT_NE(error.find("does not match"), std::string::npos) << error;
}

}  // namespace
}  // namespace dts
