// Tests for the parallel campaign execution subsystem (src/exec/):
// schedule-independent output, progress accounting, and the resumable run
// journal. Labelled `exec` in CTest so the suite can be run in isolation
// under ThreadSanitizer (cmake --preset tsan && ctest -L exec).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "exec/progress.h"

namespace dts {
namespace {

core::RunConfig make_config(const std::string& workload,
                            mw::MiddlewareKind m = mw::MiddlewareKind::kNone) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  cfg.middleware = m;
  cfg.watchd_version = mw::WatchdVersion::kV3;
  return cfg;
}

/// A small evenly-sampled fault list for `cfg`, restricted to activated
/// functions (what run_workload_set sweeps).
inject::FaultList capped_list(const core::RunConfig& cfg, std::uint64_t seed,
                              std::size_t cap) {
  const auto fns = core::profile_workload(cfg, seed);
  return inject::FaultList::for_functions(cfg.workload.target_image, fns).sampled(cap);
}

std::vector<std::string> run_lines(const std::vector<core::RunResult>& runs) {
  std::vector<std::string> out;
  out.reserve(runs.size());
  for (const auto& r : runs) out.push_back(core::serialize_run_line(r));
  return out;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// The acceptance bar of the subsystem: a capped Apache1+watchd sweep must
// serialize byte-identically at jobs ∈ {1, 2, 8}.
TEST(Exec, ParallelOutputByteIdenticalAcrossJobs) {
  const core::RunConfig cfg = make_config("Apache1", mw::MiddlewareKind::kWatchd);
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 18;

  opt.jobs = 1;
  const std::string serial = core::serialize_workload_set(core::run_workload_set(cfg, opt));
  opt.jobs = 2;
  const std::string two = core::serialize_workload_set(core::run_workload_set(cfg, opt));
  opt.jobs = 8;
  const std::string eight = core::serialize_workload_set(core::run_workload_set(cfg, opt));

  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // And the round-trip still holds on the parallel output.
  std::string error;
  auto reloaded = core::deserialize_workload_set(eight, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(core::serialize_workload_set(*reloaded), serial);
}

// The progress callback fires once per fault — including skip-uncalled ones
// (historically the skip branch bypassed it, so progress stalled then
// jumped) — and `done` is contiguous.
TEST(Exec, ProgressReportedForEveryFaultIncludingSkipped) {
  const core::RunConfig cfg = make_config("Apache1");
  // A function the workload never calls: its first fault executes (proving
  // the function uncalled) and every later fault is skipped.
  const auto activated = core::profile_workload(cfg, 7);
  nt::Fn uncalled_fn = nt::Fn::kImplementedCount;
  for (std::uint16_t id = 0; id < nt::kImplementedFunctionCount; ++id) {
    const nt::Fn fn = static_cast<nt::Fn>(id);
    if (!activated.contains(fn) &&
        nt::Kernel32Registry::instance().info(fn).param_count() > 0) {
      uncalled_fn = fn;
      break;
    }
  }
  ASSERT_NE(uncalled_fn, nt::Fn::kImplementedCount);

  const inject::FaultList list =
      inject::FaultList::for_functions(cfg.workload.target_image, {uncalled_fn});
  ASSERT_GT(list.faults.size(), 1u);

  std::vector<std::size_t> done_values;
  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.on_progress = [&](const exec::ProgressSnapshot& s) {
    done_values.push_back(s.done);
    EXPECT_EQ(s.total, list.faults.size());
  };
  const exec::CampaignResult r = exec::CampaignExecutor(eo).run(cfg, list, 7);

  ASSERT_EQ(r.runs.size(), list.faults.size());
  EXPECT_EQ(done_values.size(), list.faults.size());
  for (std::size_t i = 0; i < done_values.size(); ++i) EXPECT_EQ(done_values[i], i + 1);
  EXPECT_GT(r.skipped, 0u);
  EXPECT_EQ(r.runs.back().detail, "skipped: function not called by this workload");
}

// Kill a campaign after K runs, resume from its journal, and the final
// results match an uninterrupted sweep record-for-record.
TEST(Exec, JournalResumeAfterCancelMatchesUninterrupted) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 12);
  ASSERT_EQ(list.faults.size(), 12u);

  exec::ExecOptions plain;
  plain.jobs = 2;
  const exec::CampaignResult uninterrupted =
      exec::CampaignExecutor(plain).run(cfg, list, 7);
  ASSERT_FALSE(uninterrupted.interrupted);

  const std::string journal = temp_path("exec_resume.jsonl");
  std::filesystem::remove(journal);

  std::atomic<bool> cancel{false};
  exec::ExecOptions first;
  first.jobs = 1;
  first.journal_path = journal;
  first.cancel = &cancel;
  first.on_progress = [&](const exec::ProgressSnapshot& s) {
    if (s.done >= 4) cancel.store(true);
  };
  const exec::CampaignResult killed = exec::CampaignExecutor(first).run(cfg, list, 7);
  EXPECT_TRUE(killed.interrupted);
  EXPECT_TRUE(killed.runs.empty());

  exec::ExecOptions second;
  second.jobs = 2;
  second.journal_path = journal;
  second.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(second).run(cfg, list, 7);
  ASSERT_FALSE(resumed.interrupted);
  EXPECT_GE(resumed.reused, 1u);
  EXPECT_LT(resumed.executed, list.faults.size());
  EXPECT_EQ(run_lines(resumed.runs), run_lines(uninterrupted.runs));
}

// A journal written for one campaign must not be resumable by another.
TEST(Exec, JournalFromDifferentCampaignRefused) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 4);

  const std::string journal = temp_path("exec_mismatch.jsonl");
  std::filesystem::remove(journal);
  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  (void)exec::CampaignExecutor(eo).run(cfg, list, 7);

  eo.resume = true;
  EXPECT_THROW((void)exec::CampaignExecutor(eo).run(cfg, list, 8), std::runtime_error);
}

// `--jobs=0` means auto-detect, and hardware_concurrency() is advisory —
// it may return 0 (single-core containers do). The resolver must clamp
// every degenerate combination to at least one worker.
TEST(Exec, EffectiveJobsClampsAutoDetectAndUnknownHardware) {
  EXPECT_EQ(exec::effective_jobs(4, 8u), 4);   // explicit request wins
  EXPECT_EQ(exec::effective_jobs(1, 0u), 1);   // explicit, hw unknown
  EXPECT_EQ(exec::effective_jobs(0, 8u), 8);   // auto-detect follows hw
  EXPECT_EQ(exec::effective_jobs(-3, 8u), 8);  // negative treated as auto
  EXPECT_EQ(exec::effective_jobs(0, 0u), 1);   // auto-detect, hw unknown
  EXPECT_EQ(exec::effective_jobs(-1, 0u), 1);
  EXPECT_GE(exec::effective_jobs(0), 1);  // real hardware_concurrency()
}

// The journal's FINAL record truncated mid-line — the classic
// killed-inside-the-last-write shape — must resume by re-executing exactly
// that one run and reusing every other record.
TEST(Exec, FinalRecordTruncatedMidLineReexecutesOnlyThatRun) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);

  const std::string journal = temp_path("exec_torn_final.jsonl");
  std::filesystem::remove(journal);
  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  const exec::CampaignResult full = exec::CampaignExecutor(eo).run(cfg, list, 7);
  ASSERT_GT(full.executed, 1u);

  // Chop the last record in half, newline included.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 3u);
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
    out << lines.back().substr(0, lines.back().size() / 2);
  }

  exec::ExecOptions again;
  again.jobs = 1;
  again.journal_path = journal;
  again.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(again).run(cfg, list, 7);
  EXPECT_EQ(resumed.reused, full.executed - 1);
  EXPECT_EQ(resumed.executed, 1u);
  EXPECT_EQ(run_lines(resumed.runs), run_lines(full.runs));
}

// A journal torn mid-record (the process died inside a write) resumes
// cleanly: the torn line is ignored, the valid records are reused.
TEST(Exec, TruncatedJournalRecordsIgnoredOnResume) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);

  const std::string journal = temp_path("exec_torn.jsonl");
  std::filesystem::remove(journal);
  exec::ExecOptions eo;
  eo.jobs = 2;
  eo.journal_path = journal;
  const exec::CampaignResult full = exec::CampaignExecutor(eo).run(cfg, list, 7);

  {
    std::ofstream out(journal, std::ios::app);
    out << "{\"i\":2,\"fault\":\"torn-rec";  // no trailing newline either
  }

  exec::ExecOptions again;
  again.jobs = 1;
  again.journal_path = journal;
  again.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(again).run(cfg, list, 7);
  EXPECT_EQ(resumed.reused, full.executed);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(run_lines(resumed.runs), run_lines(full.runs));
}

// The core-level plumbing: run_workload_set with a journal, then resume —
// nothing re-executes and the serialization is unchanged.
TEST(Exec, RunWorkloadSetResumesViaCampaignOptions) {
  const core::RunConfig cfg = make_config("Apache1");
  const std::string journal = temp_path("exec_campaign.jsonl");
  std::filesystem::remove(journal);

  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 8;
  opt.jobs = 2;
  opt.journal_path = journal;
  const std::string first = core::serialize_workload_set(core::run_workload_set(cfg, opt));

  opt.resume = true;
  exec::ProgressSnapshot last;
  opt.on_snapshot = [&](const exec::ProgressSnapshot& s) { last = s; };
  const std::string second =
      core::serialize_workload_set(core::run_workload_set(cfg, opt));
  EXPECT_EQ(first, second);
  EXPECT_EQ(last.executed, 0u);  // every fresh run came from the journal
  EXPECT_GT(last.reused, 0u);
}

// The ETA must follow the recent completion rate, not the whole-campaign
// average: after a slow warm-up the window converges on the current rate.
TEST(Exec, EtaUsesRecentRateWindowNotLifetimeAverage) {
  double now = 0.0;
  exec::ProgressTracker tracker(100, 0, [&now] { return now; });

  // 10 slow completions at 1 run/s...
  for (int i = 1; i <= 10; ++i) {
    now = static_cast<double>(i);
    (void)tracker.completed(true);
  }
  // ...then a full window of fast completions at 10 runs/s.
  for (int i = 1; i <= 64; ++i) {
    now = 10.0 + 0.1 * i;
    (void)tracker.completed(true);
  }

  const exec::ProgressSnapshot s = tracker.snapshot();
  EXPECT_EQ(s.done, 74u);
  // Window rate: 63 intervals over 6.3s = 10 runs/s; the lifetime average
  // (74 / 16.4s ≈ 4.5 runs/s) would nearly double the ETA.
  EXPECT_NEAR(s.runs_per_sec, 10.0, 0.5);
  EXPECT_NEAR(s.eta_s, 26.0 / 10.0, 0.5);
}

// Until the window has two fresh completions the lifetime average is the
// only rate available — and with no fresh completions the ETA stays 0.
TEST(Exec, EtaFallsBackToLifetimeAverageWhenWindowCold) {
  double now = 0.0;
  exec::ProgressTracker tracker(10, 4, [&now] { return now; });
  now = 2.0;
  const exec::ProgressSnapshot one = tracker.completed(true);
  EXPECT_EQ(one.done, 5u);
  EXPECT_NEAR(one.runs_per_sec, 0.5, 1e-9);  // 1 fresh run / 2s
  now = 4.0;
  const exec::ProgressSnapshot skip = tracker.completed(false);  // skip-uncalled
  EXPECT_EQ(skip.done, 6u);
  EXPECT_NEAR(skip.runs_per_sec, 0.25, 1e-9);  // still 1 fresh run, now / 4s
}

// A v1 journal (no wall_us/sim_us/fx) written by two releases ago must
// resume cleanly under the current reader.
TEST(Exec, JournalV1FilesResumeUnderCurrentReader) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);

  const std::string journal = temp_path("exec_v1compat.jsonl");
  std::filesystem::remove(journal);
  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  const exec::CampaignResult full = exec::CampaignExecutor(eo).run(cfg, list, 7);
  ASSERT_GT(full.executed, 0u);

  // Rewrite the journal as its v1 ancestor: version 1 header, records
  // truncated before the v2 timing fields (which also drops the v3 "xi").
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  {
    std::ofstream out(journal, std::ios::trunc);
    for (std::string line : lines) {
      const auto header = line.find("\"dts_journal\":3");
      if (header != std::string::npos) {
        line.replace(header, 15, "\"dts_journal\":1");
      }
      const auto v2_fields = line.find(",\"wall_us\":");
      if (v2_fields != std::string::npos) {
        line = line.substr(0, v2_fields) + "}";
      }
      out << line << "\n";
    }
  }

  exec::ExecOptions again;
  again.jobs = 2;
  again.journal_path = journal;
  again.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(again).run(cfg, list, 7);
  EXPECT_EQ(resumed.reused, full.executed);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(run_lines(resumed.runs), run_lines(full.runs));
}

// Forward compatibility the other way: records carrying fields this reader
// has never heard of still parse, and the v2 extras round-trip.
TEST(Exec, JournalReaderToleratesUnknownFieldsAndRoundTripsV2Extras) {
  const std::string path = temp_path("exec_v2fields.jsonl");
  std::filesystem::remove(path);

  exec::JournalKey key;
  key.workload = "Apache1";
  key.middleware = 0;
  key.watchd_version = 3;
  key.seed = 7;
  key.fault_count = 2;

  exec::RunJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(path, key, /*append=*/false, &error)) << error;
  exec::JournalRecord rec;
  rec.index = 0;
  rec.fault_id = "ReadFile.hFile#1:zero";
  rec.fn_called = true;
  rec.run_line = "ReadFile.hFile#1:zero 1 failure 0 123 0 0 1";
  rec.wall_us = 1832;
  rec.sim_us = 414000000;
  rec.forensics = "=== DTS forensics ===\nline \"two\"\n";
  journal.append(rec);
  {
    // A future schema rev appended a field v2 never defined.
    std::ofstream out(path, std::ios::app);
    out << "{\"i\":1,\"fault\":\"WriteFile.buf#1:rand\",\"called\":0,"
           "\"run\":\"WriteFile.buf#1:rand 0 normal 1 5 0 0 1\","
           "\"wall_us\":12,\"sim_us\":34,\"cpu_temp\":451}\n";
  }

  const auto records = exec::read_journal(path, key, &error);
  ASSERT_TRUE(records.has_value()) << error;
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].wall_us, 1832u);
  EXPECT_EQ((*records)[0].sim_us, 414000000u);
  EXPECT_EQ((*records)[0].forensics, rec.forensics);
  EXPECT_EQ((*records)[1].wall_us, 12u);
  EXPECT_EQ((*records)[1].sim_us, 34u);
  EXPECT_TRUE((*records)[1].forensics.empty());

  // And the header written today really is schema v5.
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"dts_journal\":5"), std::string::npos);
}

TEST(Exec, ProgressFormatting) {
  exec::ProgressSnapshot s;
  s.done = 30;
  s.total = 120;
  s.executed = 30;
  s.elapsed_s = 10.0;
  s.runs_per_sec = 3.0;
  s.eta_s = 30.0;
  EXPECT_EQ(exec::format_progress(s), "30/120 runs  3.0 runs/s  ETA 30s");
  exec::ProgressSnapshot cold;
  cold.done = 0;
  cold.total = 120;
  EXPECT_EQ(exec::format_progress(cold), "0/120 runs");
}

}  // namespace
}  // namespace dts
