// Tests for the snapshot subsystem (src/snap/): per-component COW
// capture/restore round-trips, world digests, checkpoint placement, and the
// correctness bar of the fork execution path — campaign output byte-identical
// to the unsnapshotted executor at any jobs count, including across journal
// resume in either direction. Labelled `snap` in CTest (also in the ASan and
// TSan preset filters).
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "ntsim/event_log.h"
#include "ntsim/filesystem.h"
#include "ntsim/handle_table.h"
#include "ntsim/kernel.h"
#include "ntsim/memory.h"
#include "ntsim/netsim.h"
#include "ntsim/object.h"
#include "ntsim/registry.h"
#include "ntsim/scm.h"
#include "obs/metrics.h"
#include "plan/checkpoints.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "snap/fork_runner.h"
#include "snap/snapshot.h"

namespace dts {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// --- per-component round-trips: capture -> mutate -> restore -> deep equal ---

TEST(SnapComponents, MemoryRoundTripAndCowSharing) {
  nt::VirtualMemory mem;
  const nt::Ptr a = mem.alloc(64);
  const nt::Ptr b = mem.alloc(256);
  mem.write_bytes(a, "hello snapshot");
  mem.write_u32(b, 0xDEADBEEF);

  nt::CowStats stats;
  const nt::VirtualMemory::Snapshot s1 = mem.capture(&stats);
  // First capture: nothing was shared yet, every payload privately owned.
  EXPECT_EQ(stats.shared_blocks, 0u);
  EXPECT_EQ(stats.copied_blocks, 2u);
  EXPECT_GT(stats.copied_bytes, 0u);

  // A second capture structure-shares with the first (use_count > 1).
  nt::CowStats stats2;
  const nt::VirtualMemory::Snapshot s2 = mem.capture(&stats2);
  EXPECT_EQ(stats2.shared_blocks, 2u);
  EXPECT_EQ(stats2.copied_blocks, 0u);
  EXPECT_EQ(s1, s2);

  // Mutate: the write must clone the shared payload, not corrupt s1.
  mem.write_bytes(a, "mutated!!");
  mem.write_u32(b, 0x1234);
  const nt::Ptr c = mem.alloc(16);
  mem.write_u32(c, 7);
  EXPECT_GE(mem.cow_copies(), 2u);
  const nt::VirtualMemory::Snapshot s3 = mem.capture(nullptr);
  EXPECT_FALSE(s1 == s3);

  mem.restore(s1);
  EXPECT_EQ(mem.read_bytes(a, 14), "hello snapshot");
  EXPECT_EQ(mem.read_u32(b), 0xDEADBEEF);
  EXPECT_EQ(mem.capture(nullptr), s1);
}

TEST(SnapComponents, FilesystemRoundTripSharesContent) {
  nt::Filesystem fs;
  fs.put_file("C:\\inetpub\\wwwroot\\index.html", "<html>golden</html>");
  fs.put_file("C:\\temp\\scratch.txt", "scratch");

  nt::CowStats stats;
  const nt::Filesystem::Snapshot s1 = fs.capture(&stats);

  fs.put_file("C:\\temp\\scratch.txt", "overwritten");
  fs.put_file("C:\\temp\\new.txt", "created after capture");
  fs.mkdirs("C:\\later");
  const nt::Filesystem::Snapshot s2 = fs.capture(nullptr);
  EXPECT_FALSE(s1 == s2);

  fs.restore(s1);
  EXPECT_EQ(fs.get_file("C:\\temp\\scratch.txt").value_or(""), "scratch");
  EXPECT_FALSE(fs.exists("C:\\temp\\new.txt"));
  EXPECT_FALSE(fs.exists("C:\\later"));
  EXPECT_EQ(fs.capture(nullptr), s1);
}

TEST(SnapComponents, RegistryRoundTrip) {
  nt::Registry reg;
  ASSERT_TRUE(reg.create_key("HKLM\\Software\\DTS"));
  ASSERT_TRUE(reg.set_string("HKLM\\Software\\DTS", "version", "1.0"));
  ASSERT_TRUE(reg.set_dword("HKLM\\Software\\DTS", "runs", 42));

  const nt::Registry::Snapshot s1 = reg.capture();
  ASSERT_TRUE(reg.set_dword("HKLM\\Software\\DTS", "runs", 43));
  ASSERT_TRUE(reg.create_key("HKLM\\Software\\Other"));
  ASSERT_TRUE(reg.delete_value("HKLM\\Software\\DTS", "version"));
  EXPECT_FALSE(reg.capture() == s1);

  reg.restore(s1);
  EXPECT_EQ(reg.get_dword("HKLM\\Software\\DTS", "runs").value_or(0), 42u);
  EXPECT_EQ(reg.get_string("HKLM\\Software\\DTS", "version").value_or(""), "1.0");
  EXPECT_FALSE(reg.key_exists("HKLM\\Software\\Other"));
  EXPECT_EQ(reg.capture(), s1);
}

TEST(SnapComponents, EventLogRoundTrip) {
  nt::EventLog log;
  log.write(sim::TimePoint{}, nt::EventSeverity::kInformation, "SCM", 1, "start");
  log.write(sim::TimePoint{} + sim::Duration::seconds(1), nt::EventSeverity::kError,
            "SCM", 2, "crash");

  const nt::EventLog::Snapshot s1 = log.capture();
  log.write(sim::TimePoint{} + sim::Duration::seconds(2),
            nt::EventSeverity::kInformation, "SCM", 3, "restart");
  log.set_retention(1);
  EXPECT_FALSE(log.capture() == s1);

  log.restore(s1);
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.retention(), 0u);
  EXPECT_EQ(log.capture(), s1);
}

TEST(SnapComponents, ScmRoundTrip) {
  sim::Simulation sim(1);
  nt::Machine machine(sim, nt::MachineConfig{.name = "target"});
  nt::ServiceConfig svc;
  svc.name = "W3SVC";
  svc.image = "inetinfo.exe";
  svc.command_line = "inetinfo.exe -svc";
  machine.scm().register_service(svc);

  const nt::Scm::Snapshot s1 = machine.scm().capture();
  nt::ServiceConfig extra;
  extra.name = "Apache";
  extra.image = "apache.exe";
  machine.scm().register_service(extra);
  EXPECT_FALSE(machine.scm().capture() == s1);

  machine.scm().restore(s1);
  EXPECT_EQ(machine.scm().capture(), s1);
}

TEST(SnapComponents, HandleTableRoundTripSharesObjects) {
  sim::Simulation sim(1);
  nt::HandleTable table;
  const nt::Handle h1 =
      table.insert(std::make_shared<nt::EventObject>(sim, false, false));
  const nt::Handle h2 =
      table.insert(std::make_shared<nt::EventObject>(sim, true, true));

  const nt::HandleTable::Snapshot s1 = table.capture();
  ASSERT_TRUE(table.close(h1));
  table.insert(std::make_shared<nt::EventObject>(sim, false, true));
  EXPECT_FALSE(table.capture() == s1);

  table.restore(s1);
  // Pointer-identity equality: the restored table holds the *same* live
  // kernel objects the capture saw.
  EXPECT_EQ(table.capture(), s1);
  EXPECT_EQ(table.get(h1), s1.table.at(h1.value));
  EXPECT_EQ(table.get(h2), s1.table.at(h2.value));
}

TEST(SnapComponents, NetworkRoundTripAndDivergenceCheck) {
  sim::Simulation sim(1);
  nt::net::Network net(sim);
  auto listener = net.listen("target", 80);
  ASSERT_NE(listener, nullptr);

  const nt::net::Network::Snapshot s1 = net.capture();
  EXPECT_EQ(s1.bound_ports.size(), 1u);

  // Same bound-port set: restore succeeds and carries the counter.
  nt::net::Network::Snapshot altered = s1;
  altered.connections = 42;
  EXPECT_TRUE(net.restore(altered));
  EXPECT_EQ(net.connections_made(), 42u);
  EXPECT_EQ(net.capture(), altered);

  // Structurally diverged world (extra bound port): restore refuses.
  auto second = net.listen("target", 8080);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(net.restore(s1));
}

TEST(SnapComponents, EventQueueRoundTripPreservesPopOrder) {
  sim::EventQueue q;
  std::vector<int> fired;
  q.push(sim::TimePoint{} + sim::Duration::seconds(3), [&] { fired.push_back(3); });
  q.push(sim::TimePoint{} + sim::Duration::seconds(1), [&] { fired.push_back(1); });
  q.push(sim::TimePoint{} + sim::Duration::seconds(2), [&] { fired.push_back(2); });

  const sim::EventQueue::Snapshot s1 = q.capture();
  ASSERT_EQ(s1.heap.size(), 3u);

  // Drain once, recording the (time-ordered) firing sequence.
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));

  // Restore and drain again: identical order, callbacks still live.
  q.restore(s1);
  EXPECT_EQ(q.size(), 3u);
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 1, 2, 3}));

  // Seq continuity: events pushed after a restore keep monotonic tie-break
  // order relative to the snapshot's events.
  q.restore(s1);
  q.push(sim::TimePoint{} + sim::Duration::seconds(1), [&] { fired.push_back(9); });
  fired.clear();
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 9, 2, 3}));
}

// --- whole-world capture/restore and digests --------------------------------

TEST(SnapWorld, CaptureRestoreDigestStability) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  cfg.seed = 7;
  core::FaultInjectionRun run(cfg);
  (void)run.execute(std::nullopt);

  // Post-run world: capture, mutate, restore, digest must return.
  const snap::WorldSnapshot s1 = snap::capture_world(run, 0);
  EXPECT_EQ(s1.digest, snap::world_digest(s1));

  run.target().fs().put_file("C:\\mutate.txt", "x");
  const snap::WorldSnapshot s2 = snap::capture_world(run, 0);
  EXPECT_NE(s1.digest, s2.digest);

  ASSERT_TRUE(snap::restore_world(run, s1));
  const snap::WorldSnapshot s3 = snap::capture_world(run, 0);
  EXPECT_EQ(s1.digest, s3.digest);

  // The stored snapshot's payloads were structure-shared across the mutation
  // and restore; recomputing its digest must still match (COW held).
  EXPECT_EQ(snap::world_digest(s1), s1.digest);
}

TEST(SnapWorld, SnapshotIdentityFoldsAllParts) {
  const std::uint64_t id = plan::snapshot_identity(1, 2, 3);
  EXPECT_NE(id, plan::snapshot_identity(9, 2, 3));
  EXPECT_NE(id, plan::snapshot_identity(1, 9, 3));
  EXPECT_NE(id, plan::snapshot_identity(1, 2, 9));
}

TEST(SnapWorld, CheckpointPlacement) {
  using plan::place_checkpoints;
  // Dedup + sort; unbounded keeps every distinct site.
  EXPECT_EQ(place_checkpoints({5, 1, 5, 3}, 0),
            (std::vector<std::uint64_t>{1, 3, 5}));
  // Capped placement keeps the earliest site and lands only on real sites.
  const auto placed = place_checkpoints({10, 20, 30, 40, 50, 60, 70, 80}, 3);
  ASSERT_EQ(placed.size(), 3u);
  EXPECT_EQ(placed.front(), 10u);
  EXPECT_EQ(placed.back(), 80u);
  EXPECT_EQ(place_checkpoints({10, 20, 30}, 1), (std::vector<std::uint64_t>{10}));
  EXPECT_TRUE(place_checkpoints({}, 4).empty());
}

// --- the correctness bar ----------------------------------------------------

core::RunConfig apache_config() {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name("Apache1");
  return cfg;
}

std::string campaign_output(const core::RunConfig& cfg, bool snapshots, int jobs,
                            std::size_t max_faults, std::uint64_t seed = 7) {
  core::CampaignOptions opt;
  opt.seed = seed;
  opt.max_faults = max_faults;
  opt.jobs = jobs;
  opt.snapshots = snapshots;
  return core::serialize_workload_set(core::run_workload_set(cfg, opt));
}

// Campaign output with snapshots on must be byte-identical to the default
// executor at jobs 1, 2 and 8 — the subsystem's acceptance bar.
TEST(SnapCampaign, ByteIdenticalAcrossModesAndJobs) {
  const core::RunConfig cfg = apache_config();
  const std::string baseline = campaign_output(cfg, /*snapshots=*/false, 1, 18);
  EXPECT_EQ(campaign_output(cfg, /*snapshots=*/true, 1, 18), baseline);
  EXPECT_EQ(campaign_output(cfg, /*snapshots=*/true, 2, 18), baseline);
  EXPECT_EQ(campaign_output(cfg, /*snapshots=*/true, 8, 18), baseline);
}

// Planned campaigns (plan entries carry their own call sites) must agree too.
TEST(SnapCampaign, PlannedCampaignByteIdentical) {
  const core::RunConfig cfg = apache_config();
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 18;
  opt.plan.mode = plan::PlanOptions::Mode::kAuto;
  opt.snapshots = false;
  const std::string baseline =
      core::serialize_workload_set(core::run_workload_set(cfg, opt));
  opt.snapshots = true;
  opt.jobs = 2;
  EXPECT_EQ(core::serialize_workload_set(core::run_workload_set(cfg, opt)), baseline);
}

// A journal written under one snapshot mode must resume under the other, in
// both directions, with byte-identical final output.
TEST(SnapCampaign, JournalResumesAcrossSnapshotModes) {
  const core::RunConfig cfg = apache_config();
  const std::string baseline = campaign_output(cfg, /*snapshots=*/false, 1, 12);

  for (const bool first_snapshots : {true, false}) {
    const std::string journal =
        temp_path(first_snapshots ? "snap_then_plain.jsonl" : "plain_then_snap.jsonl");
    std::filesystem::remove(journal);

    core::CampaignOptions opt;
    opt.seed = 7;
    opt.max_faults = 12;
    opt.snapshots = first_snapshots;
    opt.journal_path = journal;
    (void)core::run_workload_set(cfg, opt);

    // Truncate the journal to its header plus a prefix of records, so the
    // resume genuinely executes the remainder under the opposite mode.
    std::ifstream in(journal);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), 4u);
    std::ofstream out(journal, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << "\n";
    out.close();

    opt.snapshots = !first_snapshots;
    opt.resume = true;
    const core::WorkloadSetResult resumed = core::run_workload_set(cfg, opt);
    EXPECT_EQ(core::serialize_workload_set(resumed), baseline)
        << "resume direction: " << (first_snapshots ? "snap->plain" : "plain->snap");
  }
}

// Guard against the subsystem silently degenerating into all-fallback: on a
// POSIX host the campaign above must actually fork most of its runs from
// snapshots, and the metrics must show it.
TEST(SnapFork, CampaignActuallyForks) {
  if (!snap::snapshots_supported()) GTEST_SKIP() << "no fork on this platform";
  obs::MetricsRegistry metrics;
  core::CampaignOptions opt;
  opt.seed = 7;
  opt.max_faults = 18;
  opt.snapshots = true;
  opt.metrics = &metrics;
  (void)core::run_workload_set(apache_config(), opt);

  std::uint64_t forked = 0, snapshots = 0, violations = 0, shared_bytes = 0;
  for (const obs::MetricSample& s : metrics.snapshot()) {
    if (s.name == "dts_snap_forked_runs_total") forked += s.counter_value;
    if (s.name == "dts_snap_snapshots_total") snapshots += s.counter_value;
    if (s.name == "dts_snap_cow_violations_total") violations += s.counter_value;
    if (s.name == "dts_snap_shared_bytes_total") shared_bytes += s.counter_value;
  }
  EXPECT_GT(forked, 0u) << "snapshot campaign never forked a run";
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(shared_bytes, 0u) << "snapshots are not structure-sharing";
  EXPECT_EQ(violations, 0u) << "COW self-check tripped";
}

// The fallback path must execute every item on a platform (or configuration)
// where forking is unsupported — nothing is ever dropped.
TEST(SnapFork, UnsupportedConfigurationsFallBack) {
  core::RunConfig cfg = apache_config();
  EXPECT_EQ(snap::unsupported_reason(cfg, /*tracing=*/false), "");
  EXPECT_NE(snap::unsupported_reason(cfg, /*tracing=*/true), "");
  cfg.target_jitter = 0.1;
  EXPECT_NE(snap::unsupported_reason(cfg, /*tracing=*/false), "");
  cfg.target_jitter = 0.0;
  cfg.golden_capture = 4;
  EXPECT_NE(snap::unsupported_reason(cfg, /*tracing=*/false), "");
}

}  // namespace
}  // namespace dts
