// Behavioural tests for the fault-tolerance middleware: MSCS's generic
// resource monitor and the three watchd versions (paper §4.1, §4.3).
#include <gtest/gtest.h>

#include "apps/apache.h"
#include "apps/iis.h"
#include "middleware/mscs.h"
#include "middleware/watchd.h"
#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"
#include "ntsim/netsim.h"
#include "ntsim/scm.h"

namespace dts::mw {
namespace {

using nt::Ctx;
using sim::Duration;

/// World with a configurable toy service: init_time to Running, then serve
/// forever (or die at death_time).
struct MwWorld {
  sim::Simulation simu{13};
  nt::net::Network net{simu};  // must outlive the machines
  nt::Machine m{simu, nt::MachineConfig{.name = "target", .cpu_scale = 1.0}};

  void install_service(Duration init_time, Duration wait_hint,
                       std::optional<Duration> death_time = std::nullopt) {
    m.register_program("svc.exe", [init_time, death_time](Ctx c) -> sim::Task {
      co_await nt::sleep_in_sim(c, init_time);
      c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
      if (death_time) {
        co_await nt::sleep_in_sim(c, *death_time);
        throw nt::AccessViolation{0xBAD, false};
      }
      co_await nt::sleep_in_sim(c, Duration::seconds(1000000));
    });
    m.scm().register_service(nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", wait_hint});
  }

  nt::ServiceState state() { return m.scm().query("Svc")->state; }
  void run_for(Duration d) { simu.run_until(simu.now() + d); }
};

// ---------------------------------------------------------------- MSCS

TEST(Mscs, BringsServiceOnlineAndKeepsItRunning) {
  MwWorld w;
  w.install_service(Duration::seconds(1), Duration::seconds(10));
  MscsConfig cfg{.service_name = "Svc"};
  install_mscs(w.m, cfg);
  start_mscs(w.m, cfg);
  w.run_for(Duration::seconds(10));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  EXPECT_EQ(w.m.event_log().count("ClusSvc", kMscsEventOnline), 1u);
  EXPECT_EQ(w.m.event_log().count("ClusSvc", kMscsEventRestart), 0u);
}

TEST(Mscs, RestartsCrashedService) {
  MwWorld w;
  w.install_service(Duration::seconds(1), Duration::seconds(10),
                    /*death_time=*/Duration::seconds(20));
  MscsConfig cfg{.service_name = "Svc"};
  install_mscs(w.m, cfg);
  start_mscs(w.m, cfg);
  w.run_for(Duration::seconds(60));
  // Crashed at ~21 s, restarted by the next poll; second instance (the
  // injected fault is one-shot in real runs; this toy dies every time, so at
  // least one restart must be logged and the service keeps flapping back).
  EXPECT_GE(w.m.event_log().count("ClusSvc", kMscsEventRestart), 1u);
  EXPECT_GE(w.m.scm().starts(), 2u);
}

TEST(Mscs, GivesUpWhenStartPendingOutlastsPatience) {
  // The paper's Apache scenario: the service dies immediately after start,
  // the SCM wedges in StartPending for the (long) wait hint, and MSCS's
  // bounded attempts run out: the resource is left failed.
  MwWorld w;
  w.install_service(Duration::seconds(5), /*wait_hint=*/Duration::seconds(30),
                    /*death_time=*/std::nullopt);
  // Override: service dies *before* reporting Running.
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::millis(100));
    throw nt::AccessViolation{0xBAD, false};
  });
  MscsConfig cfg{.service_name = "Svc",
                 .pending_timeout = Duration::seconds(20),
                 .restart_threshold = 2};
  install_mscs(w.m, cfg);
  start_mscs(w.m, cfg);
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(w.m.event_log().count("ClusSvc", kMscsEventResourceFailed), 1u);
  EXPECT_EQ(w.state(), nt::ServiceState::kStopped);
}

TEST(Mscs, RecoversWhenWaitHintIsShort) {
  // Same early death, but the service's wait hint (10 s) expires inside
  // MSCS's patience, so the restart succeeds — the IIS case.
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    // Dies on its first instance only (one-shot, like an injected fault).
    if (c.m().starts_of("svc.exe") <= 1) {
      co_await nt::sleep_in_sim(c, Duration::millis(100));
      throw nt::AccessViolation{0xBAD, false};  // first instance dies early
    }
    co_await nt::sleep_in_sim(c, Duration::millis(500));
    c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
    co_await nt::sleep_in_sim(c, Duration::seconds(1000000));
  });
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(10)});
  MscsConfig cfg{.service_name = "Svc"};
  install_mscs(w.m, cfg);
  start_mscs(w.m, cfg);
  w.run_for(Duration::seconds(60));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  EXPECT_GE(w.m.event_log().count("ClusSvc", kMscsEventRestart), 1u);
}

TEST(Mscs, MissesHangs) {
  // A running-but-hung service passes the generic IsAlive check forever —
  // MSCS's blind spot (paper §4.1: only the generic resource monitor).
  MwWorld w;
  w.install_service(Duration::millis(500), Duration::seconds(10));  // hangs after Running
  MscsConfig cfg{.service_name = "Svc"};
  install_mscs(w.m, cfg);
  start_mscs(w.m, cfg);
  w.run_for(Duration::seconds(300));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  EXPECT_EQ(w.m.scm().starts(), 1u);  // never restarted
}

// ---------------------------------------------------------------- watchd

WatchdConfig watchd_cfg(WatchdVersion v) {
  WatchdConfig cfg;
  cfg.service_name = "Svc";
  cfg.version = v;
  return cfg;
}

TEST(Watchd, V1MissesDeathInsideInfoWindow) {
  // The paper's original coverage hole: the process dies between
  // startService() and getServiceInfo(); watchd never obtains a handle.
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::millis(100));  // < 500 ms window
    throw nt::AccessViolation{0xBAD, false};
  });
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(10)});
  install_watchd(w.m, watchd_cfg(WatchdVersion::kV1));
  start_watchd(w.m, watchd_cfg(WatchdVersion::kV1));
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(w.state(), nt::ServiceState::kStopped);  // nobody restarted it
  EXPECT_EQ(watchd_restarts_logged(w.m), 0u);
  auto log = w.m.fs().get_file("C:\\watchd\\watchd.log");
  ASSERT_TRUE(log.has_value());
  EXPECT_NE(log->find("could not obtain service process info"), std::string::npos);
}

TEST(Watchd, V2SeesTheSameDeathThroughTheMergedHandle) {
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    // One-shot early death (first instance only), then a healthy service.
    if (c.m().starts_of("svc.exe") <= 1) {
      co_await nt::sleep_in_sim(c, Duration::millis(100));
      throw nt::AccessViolation{0xBAD, false};
    }
    c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
    co_await nt::sleep_in_sim(c, Duration::seconds(1000000));
  });
  // Short wait hint: the pending lock clears inside V2's retry budget.
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(8)});
  install_watchd(w.m, watchd_cfg(WatchdVersion::kV2));
  start_watchd(w.m, watchd_cfg(WatchdVersion::kV2));
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  EXPECT_GE(watchd_restarts_logged(w.m), 1u);
}

TEST(Watchd, V2GivesUpOnLongPendingLock) {
  // Death in StartPending with a LONG wait hint: V2 sees the death (merged
  // handle) but its short restart budget expires before the SCM database
  // unlocks — the Apache1/SQL residual the paper attributes to Watchd2.
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::millis(100));
    throw nt::AccessViolation{0xBAD, false};
  });
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(30)});
  install_watchd(w.m, watchd_cfg(WatchdVersion::kV2));
  start_watchd(w.m, watchd_cfg(WatchdVersion::kV2));
  w.run_for(Duration::seconds(180));
  EXPECT_EQ(w.state(), nt::ServiceState::kStopped);
  auto log = w.m.fs().get_file("C:\\watchd\\watchd.log");
  ASSERT_TRUE(log.has_value());
  EXPECT_NE(log->find("restart failed, giving up"), std::string::npos);
}

TEST(Watchd, V3WaitsOutThePendingLockAndRecovers) {
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    if (c.m().starts_of("svc.exe") <= 1) {
      co_await nt::sleep_in_sim(c, Duration::millis(100));
      throw nt::AccessViolation{0xBAD, false};
    }
    co_await nt::sleep_in_sim(c, Duration::millis(300));
    c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
    co_await nt::sleep_in_sim(c, Duration::seconds(1000000));
  });
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(30)});
  install_watchd(w.m, watchd_cfg(WatchdVersion::kV3));
  start_watchd(w.m, watchd_cfg(WatchdVersion::kV3));
  w.run_for(Duration::seconds(120));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  EXPECT_GE(watchd_restarts_logged(w.m), 1u);
  // The recovery had to wait for the SCM's wait hint: it cannot have
  // completed before t=30 s.
  auto status = w.m.scm().query("Svc");
  EXPECT_GE(w.m.start_history().back().at, sim::TimePoint{} + Duration::seconds(30));
  (void)status;
}

TEST(Watchd, V3DetectsDeathImmediately) {
  // Death-watch on the process handle: recovery begins within ~the retry
  // interval, not a polling period.
  MwWorld w;
  w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
    c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
    if (c.m().starts_of("svc.exe") <= 1) {
      co_await nt::sleep_in_sim(c, Duration::seconds(5));
      throw nt::AccessViolation{0xBAD, false};  // dies while Running
    }
    co_await nt::sleep_in_sim(c, Duration::seconds(1000000));
  });
  w.m.scm().register_service(
      nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(10)});
  install_watchd(w.m, watchd_cfg(WatchdVersion::kV3));
  start_watchd(w.m, watchd_cfg(WatchdVersion::kV3));
  w.run_for(Duration::seconds(30));
  EXPECT_EQ(w.state(), nt::ServiceState::kRunning);
  ASSERT_GE(w.m.start_history().size(), 2u);
  // Death at ~5 s; the replacement must start within a couple of seconds.
  EXPECT_LE(w.m.start_history()[1].at, sim::TimePoint{} + Duration::seconds(8));
}

TEST(Watchd, HeartbeatRecoversHungService) {
  // A service that reports Running, answers one probe cycle, then wedges:
  // plain watchd never notices (the process is alive); the heartbeat kills
  // and restarts it.
  for (const bool heartbeat : {false, true}) {
    MwWorld w;
    w.m.register_program("svc.exe", [](Ctx c) -> sim::Task {
      c.m().scm().set_service_status(c.process->pid(), nt::ServiceState::kRunning);
      // First instance: listen but never answer (a hang). Later instances:
      // answer probes properly.
      const bool hung = c.m().starts_of("svc.exe") <= 1;
      auto* net = static_cast<nt::net::Network*>(nullptr);
      (void)net;
      co_await nt::sleep_in_sim(c, sim::Duration::seconds(hung ? 1000000 : 1000000));
    });
    // The hung instance holds no listener at all, so probes find the port
    // closed — equivalent to an accept-loop wedge.
    w.m.scm().register_service(
        nt::ServiceConfig{"Svc", "svc.exe", "svc.exe", Duration::seconds(10)});
    WatchdConfig cfg = watchd_cfg(WatchdVersion::kV3);
    cfg.heartbeat = heartbeat;
    cfg.heartbeat_port = 9999;  // nothing ever listens: every probe fails
    cfg.heartbeat_interval = Duration::seconds(5);
    cfg.heartbeat_timeout = Duration::seconds(5);
    install_watchd(w.m, cfg, &w.net);
    start_watchd(w.m, cfg);
    w.run_for(Duration::seconds(60));
    if (heartbeat) {
      // The heartbeat keeps terminating the unresponsive service, forcing
      // restarts (in a real workload the post-fault instance would answer).
      EXPECT_GE(watchd_restarts_logged(w.m), 1u);
      EXPECT_GE(w.m.scm().starts(), 2u);
    } else {
      EXPECT_EQ(watchd_restarts_logged(w.m), 0u);
      EXPECT_EQ(w.m.scm().starts(), 1u);
    }
  }
}

}  // namespace
}  // namespace dts::mw
