// Tests for the statistics toolkit (Fig. 4's 95% confidence intervals).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "stats/stats.h"

namespace dts::stats {
namespace {

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  EXPECT_DOUBLE_EQ(summarize({}).mean, 0.0);
  const Summary one = summarize({42.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);  // no interval from one sample
}

TEST(Stats, KnownValues) {
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  // CI half-width = t(7) * s / sqrt(8) = 2.365 * 2.138 / 2.828
  EXPECT_NEAR(s.ci95_half, 2.365 * 2.138 / std::sqrt(8.0), 0.01);
}

TEST(Stats, TTableShape) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
  // Monotone decreasing toward the normal asymptote.
  for (std::size_t df = 2; df < 200; ++df) {
    EXPECT_LE(t_critical_95(df), t_critical_95(df - 1));
    EXPECT_GE(t_critical_95(df), 1.959);
  }
}

TEST(Stats, AccumulatorMatchesBatch) {
  Accumulator acc;
  std::vector<double> xs;
  sim::Rng rng{3};
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform01() * 100.0;
    xs.push_back(v);
    acc.add(v);
  }
  const Summary batch = summarize(xs);
  const Summary inc = acc.summary();
  EXPECT_EQ(batch.n, inc.n);
  EXPECT_NEAR(batch.mean, inc.mean, 1e-9);
  EXPECT_NEAR(batch.stddev, inc.stddev, 1e-9);
}

TEST(Stats, ConstantSamplesHaveZeroWidth) {
  const Summary s = summarize({7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(Stats, WilsonZeroTrialsIsVacuous) {
  const Interval i = wilson_interval(0, 0, kZ95);
  EXPECT_DOUBLE_EQ(i.low, 0.0);
  EXPECT_DOUBLE_EQ(i.high, 1.0);
  EXPECT_DOUBLE_EQ(i.half_width(), 0.5);
}

TEST(Stats, WilsonZeroSuccessesStaysAboveZero) {
  // p-hat = 0, but the interval upper bound must stay positive (the "rule of
  // three" regime): low is exactly 0, high ≈ z²/(n+z²).
  const Interval i = wilson_interval(0, 20, kZ95);
  EXPECT_DOUBLE_EQ(i.low, 0.0);
  EXPECT_GT(i.high, 0.0);
  EXPECT_NEAR(i.high, kZ95 * kZ95 / (20 + kZ95 * kZ95), 1e-9);
  EXPECT_LT(i.high, 0.2);
}

TEST(Stats, WilsonAllSuccessesStaysBelowOne) {
  const Interval i = wilson_interval(20, 20, kZ95);
  EXPECT_DOUBLE_EQ(i.high, 1.0);
  EXPECT_GT(i.low, 0.8);
  // Mirror of the zero-success case.
  const Interval z = wilson_interval(0, 20, kZ95);
  EXPECT_NEAR(i.low, 1.0 - z.high, 1e-12);
}

TEST(Stats, WilsonSingleTrialIsWideButBounded) {
  const Interval hit = wilson_interval(1, 1, kZ95);
  const Interval miss = wilson_interval(0, 1, kZ95);
  // One observation tells you almost nothing: half-width near 0.4, never
  // outside [0, 1] (where the normal approximation would escape).
  EXPECT_GE(hit.low, 0.0);
  EXPECT_LE(hit.high, 1.0);
  EXPECT_GE(miss.low, 0.0);
  EXPECT_LE(miss.high, 1.0);
  EXPECT_GT(hit.half_width(), 0.3);
  EXPECT_GT(miss.half_width(), 0.3);
  EXPECT_NEAR(hit.low, 1.0 - miss.high, 1e-12);
}

TEST(Stats, WilsonLargeNMatchesNormalApproximation) {
  // At n = 10000 the Wilson interval converges on the classic Wald interval
  // p ± z·sqrt(p(1-p)/n).
  const std::size_t n = 10000;
  const std::size_t k = 3000;
  const double p = static_cast<double>(k) / static_cast<double>(n);
  const double wald = kZ95 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  const Interval i = wilson_interval(k, n, kZ95);
  EXPECT_NEAR(i.half_width(), wald, 1e-4);
  EXPECT_NEAR((i.low + i.high) / 2.0, p, 1e-4);
}

TEST(Stats, WilsonWidthShrinksWithTrials) {
  double prev = 1.0;
  for (std::size_t n = 4; n <= 4096; n *= 2) {
    const Interval i = wilson_interval(n / 4, n, kZ95);
    EXPECT_LT(i.half_width(), prev);
    prev = i.half_width();
  }
  // … and widens with confidence: z=2.576 (99 %) beats z=1.96 (95 %).
  EXPECT_GT(wilson_interval(25, 100, 2.576).half_width(),
            wilson_interval(25, 100, kZ95).half_width());
}

}  // namespace
}  // namespace dts::stats
