// Tests for the statistics toolkit (Fig. 4's 95% confidence intervals).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "stats/stats.h"

namespace dts::stats {
namespace {

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  EXPECT_DOUBLE_EQ(summarize({}).mean, 0.0);
  const Summary one = summarize({42.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);  // no interval from one sample
}

TEST(Stats, KnownValues) {
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  // CI half-width = t(7) * s / sqrt(8) = 2.365 * 2.138 / 2.828
  EXPECT_NEAR(s.ci95_half, 2.365 * 2.138 / std::sqrt(8.0), 0.01);
}

TEST(Stats, TTableShape) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
  // Monotone decreasing toward the normal asymptote.
  for (std::size_t df = 2; df < 200; ++df) {
    EXPECT_LE(t_critical_95(df), t_critical_95(df - 1));
    EXPECT_GE(t_critical_95(df), 1.959);
  }
}

TEST(Stats, AccumulatorMatchesBatch) {
  Accumulator acc;
  std::vector<double> xs;
  sim::Rng rng{3};
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform01() * 100.0;
    xs.push_back(v);
    acc.add(v);
  }
  const Summary batch = summarize(xs);
  const Summary inc = acc.summary();
  EXPECT_EQ(batch.n, inc.n);
  EXPECT_NEAR(batch.mean, inc.mean, 1e-9);
  EXPECT_NEAR(batch.stddev, inc.stddev, 1e-9);
}

TEST(Stats, ConstantSamplesHaveZeroWidth) {
  const Summary s = summarize({7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

}  // namespace
}  // namespace dts::stats
