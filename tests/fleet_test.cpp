// Tests for the fleet observability layer (src/obs/fleet/): event-log
// ordering, telemetry encode/decode/merge, causal execution indices in the
// run journal, the stall detector, the live HTTP endpoint (including
// concurrent scrapes during an active campaign), worker telemetry totals
// against the journal, and the journal-merging report generator across
// schema versions. Labelled `fleet` in CTest.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "dist/coordinator.h"
#include "dist/socket.h"
#include "dist/worker.h"
#include "exec/executor.h"
#include "exec/journal.h"
#include "obs/fleet/events.h"
#include "obs/fleet/http.h"
#include "obs/fleet/report.h"
#include "obs/fleet/span.h"
#include "obs/fleet/stall.h"
#include "obs/fleet/status.h"
#include "obs/fleet/telemetry.h"
#include "obs/metrics.h"

namespace dts {
namespace {

core::RunConfig make_config(const std::string& workload,
                            mw::MiddlewareKind m = mw::MiddlewareKind::kNone) {
  core::RunConfig cfg;
  cfg.workload = core::workload_by_name(workload);
  cfg.middleware = m;
  cfg.watchd_version = mw::WatchdVersion::kV3;
  return cfg;
}

inject::FaultList capped_list(const core::RunConfig& cfg, std::uint64_t seed,
                              std::size_t cap) {
  const auto fns = core::profile_workload(cfg, seed);
  return inject::FaultList::for_functions(cfg.workload.target_image, fns).sampled(cap);
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Minimal HTTP/1.0 client against the endpoint under test: one request,
/// reads to EOF, returns the raw response (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  std::string error;
  dist::Socket conn = dist::tcp_connect("127.0.0.1", port, 2000, 3, &error);
  if (!conn.valid()) return "connect failed: " + error;
  const std::string request = method + " " + target + " HTTP/1.0\r\n\r\n";
  if (!dist::send_all(conn.fd(), request, 2000)) return "send failed";
  std::string response;
  while (true) {
    const dist::RecvStatus st = dist::recv_some(conn.fd(), &response, 1 << 16, 2000);
    if (st == dist::RecvStatus::kClosed) break;
    if (st != dist::RecvStatus::kData) return "recv failed: " + response;
  }
  return response;
}

// --- execution index -----------------------------------------------------

TEST(FleetSpan, ExecutionIndexFormatsAllThreeComponents) {
  const obs::fleet::ExecutionIndex xi{0xa3f1c0de9b24e871ull, 4, 17};
  EXPECT_EQ(xi.to_string(), "a3f1c0de9b24e871/4/17");
  const obs::fleet::ExecutionIndex in_process{1, 0, 0};
  EXPECT_EQ(in_process.to_string(), "0000000000000001/0/0");
}

// --- fleet event log -----------------------------------------------------

TEST(FleetEvents, SequenceNumbersStayStrictlyOrderedUnderConcurrentWriters) {
  obs::fleet::FleetEventLog log;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < 200; ++i) {
        log.record(obs::fleet::FleetEventKind::kLeaseIssued, t,
                   static_cast<std::uint64_t>(i + 1), "stress");
      }
    });
  }
  for (auto& w : writers) w.join();

  const std::vector<obs::fleet::FleetEvent> entries = log.entries();
  ASSERT_EQ(entries.size(), 800u);
  EXPECT_EQ(log.total(), 800u);
  EXPECT_EQ(log.dropped(), 0u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].seq, entries[i].seq);
    EXPECT_LE(entries[i - 1].mono_us, entries[i].mono_us);
  }
}

TEST(FleetEvents, CapacityBoundDropsOldestAndTailReturnsNewest) {
  obs::fleet::FleetEventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(obs::fleet::FleetEventKind::kWorkerConnect, i, 0, "");
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().worker_id, 6);
  const auto tail = log.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].worker_id, 8);
  EXPECT_EQ(tail[1].worker_id, 9);
}

// Lifecycle events from a real distributed campaign arrive in causal order:
// a worker connects before it is ever issued a lease.
TEST(FleetEvents, DistributedCampaignRecordsConnectBeforeLease) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);

  obs::fleet::FleetEventLog events;
  dist::DistOptions d;
  d.spawn_workers = 1;
  d.events = &events;
  dist::Coordinator coordinator(cfg, list, 7, d);
  const exec::CampaignResult result = coordinator.run();
  ASSERT_FALSE(result.runs.empty());

  std::uint64_t connect_seq = 0, lease_seq = 0;
  bool saw_connect = false, saw_lease = false;
  for (const auto& e : events.entries()) {
    if (e.kind == obs::fleet::FleetEventKind::kWorkerConnect && !saw_connect) {
      connect_seq = e.seq;
      saw_connect = true;
    }
    if (e.kind == obs::fleet::FleetEventKind::kLeaseIssued && !saw_lease) {
      lease_seq = e.seq;
      saw_lease = true;
      EXPECT_GT(e.lease_id, 0u);
    }
  }
  ASSERT_TRUE(saw_connect);
  ASSERT_TRUE(saw_lease);
  EXPECT_LT(connect_seq, lease_seq);
}

// --- telemetry encode/decode/merge ---------------------------------------

TEST(FleetTelemetry, SnapshotSurvivesEncodeDecodeRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("dts_runs_total", {{"outcome", "normal"}}, "runs").inc(41);
  registry.gauge("dts_budget_seconds", {{"fn", "ReadFile"}}, "budget").set(0.125);
  obs::Histogram& h = registry.histogram("dts_wall_seconds", {},
                                         {0.001, 0.01, 0.1}, "wall");
  h.observe(0.0005);
  h.observe(0.05);
  h.observe(5.0);

  const std::string encoded = obs::fleet::encode_samples(registry.snapshot());
  const std::vector<obs::MetricSample> decoded = obs::fleet::decode_samples(encoded);
  // Round-tripping the decoded samples reproduces the payload byte for byte.
  EXPECT_EQ(obs::fleet::encode_samples(decoded), encoded);

  bool saw_hist = false;
  for (const auto& s : decoded) {
    if (s.name != "dts_wall_seconds") continue;
    saw_hist = true;
    ASSERT_EQ(s.bounds.size(), 3u);
    ASSERT_EQ(s.buckets.size(), 4u);  // +Inf last
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.buckets[3], 1u);
  }
  EXPECT_TRUE(saw_hist);
}

TEST(FleetTelemetry, DecodeSkipsMalformedLines) {
  const std::string payload =
      "c\tdts_ok_total\t\t5\thelp\n"
      "totally not a sample\n"
      "h\tdts_broken\t\t1 2;9;0\t\n"  // bucket count != bounds count + 1
      "g\tdts_ok_gauge\t\t1.5\t\n";
  const auto samples = obs::fleet::decode_samples(payload);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "dts_ok_total");
  EXPECT_EQ(samples[0].counter_value, 5u);
  EXPECT_EQ(samples[1].name, "dts_ok_gauge");
  EXPECT_DOUBLE_EQ(samples[1].gauge_value, 1.5);
}

TEST(FleetTelemetry, MergeSplicesWorkerLabelAndStaysMonotonic) {
  obs::MetricsRegistry worker;
  worker.counter("dts_runs_total", {{"outcome", "normal"}}, "runs").inc(7);

  obs::MetricsRegistry fleet;
  obs::fleet::merge_samples(fleet, 3, obs::fleet::decode_samples(
                                          obs::fleet::encode_samples(worker.snapshot())));
  obs::Counter& merged = fleet.counter_at(
      "dts_runs_total", "{outcome=\"normal\",worker=\"3\"}", "runs");
  EXPECT_EQ(merged.value(), 7u);

  // A stale (older) snapshot arriving after a newer one can't wind back.
  obs::MetricsRegistry stale;
  stale.counter("dts_runs_total", {{"outcome", "normal"}}, "runs").inc(2);
  obs::fleet::merge_samples(fleet, 3, stale.snapshot());
  EXPECT_EQ(merged.value(), 7u);

  // Other workers land in distinct children.
  obs::fleet::merge_samples(fleet, 4, worker.snapshot());
  EXPECT_EQ(fleet.counter_at("dts_runs_total", "{outcome=\"normal\",worker=\"4\"}")
                .value(),
            7u);
  EXPECT_EQ(merged.value(), 7u);
}

// --- stall detector ------------------------------------------------------

TEST(FleetStall, ArmsAfterWarmupAndFlagsOutliersAgainstPriorWindow) {
  obs::MetricsRegistry metrics;
  obs::fleet::FleetEventLog events;
  obs::fleet::StallDetector stall(&metrics, &events);
  const plan::StratumKey key{nt::Fn::ReadFile, inject::FaultType::kZero};

  // Cold stratum: nothing flags while the window is below min_samples.
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(stall.observe(key, 0.001, "f", "xi"));
    EXPECT_EQ(stall.budget_s(key), 0.0);
  }
  EXPECT_FALSE(stall.observe(key, 0.001, "f", "xi"));  // 8th arms the budget
  EXPECT_GT(stall.budget_s(key), 0.0);

  // Tight cluster: budget = median + k*IQR + slack ≈ 3ms for 1ms samples.
  const double budget = stall.budget_s(key);
  EXPECT_LT(budget, 0.01);

  // A wildly slow run flags — and is judged against the budget computed
  // *before* it entered the window.
  EXPECT_TRUE(stall.observe(key, 1.0, "ReadFile.hFile#1:zero",
                            "00000000000000ff/2/9"));
  EXPECT_EQ(stall.anomalies(), 1u);

  // The anomaly landed in the event log and in the metrics registry.
  bool saw_anomaly_event = false;
  for (const auto& e : events.entries()) {
    if (e.kind == obs::fleet::FleetEventKind::kAnomaly) {
      saw_anomaly_event = true;
      EXPECT_NE(e.detail.find("ReadFile.hFile#1:zero"), std::string::npos);
      EXPECT_NE(e.detail.find("00000000000000ff/2/9"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_anomaly_event);
  EXPECT_NE(metrics.prometheus_text().find("dts_anomaly_runs_total"),
            std::string::npos);

  // A separate stratum has its own cold window.
  const plan::StratumKey other{nt::Fn::WriteFile, inject::FaultType::kZero};
  EXPECT_FALSE(stall.observe(other, 1.0, "f", "xi"));
}

// --- status board --------------------------------------------------------

TEST(FleetStatus, RunsJsonFiltersByWorkerAndOutcome) {
  obs::fleet::StatusBoard board;
  board.record_run({0, "a#1:zero", "normal", 100, 1, 10, "x/1/0"});
  board.record_run({1, "b#1:zero", "failure", 200, 2, 11, "x/2/1"});
  board.record_run({2, "c#1:zero", "failure", 300, 1, 10, "x/1/2"});

  const std::string by_worker = board.runs_json("1", "");
  EXPECT_NE(by_worker.find("\"matched\":2"), std::string::npos);
  EXPECT_NE(by_worker.find("a#1:zero"), std::string::npos);
  EXPECT_EQ(by_worker.find("b#1:zero"), std::string::npos);

  const std::string by_outcome = board.runs_json("", "failure");
  EXPECT_NE(by_outcome.find("\"matched\":2"), std::string::npos);
  EXPECT_EQ(by_outcome.find("a#1:zero"), std::string::npos);

  const std::string both = board.runs_json("1", "failure");
  EXPECT_NE(both.find("\"matched\":1"), std::string::npos);
  EXPECT_NE(both.find("c#1:zero"), std::string::npos);

  const auto counts = board.outcome_counts();
  EXPECT_EQ(counts.at("normal"), 1u);
  EXPECT_EQ(counts.at("failure"), 2u);
}

// --- HTTP endpoint -------------------------------------------------------

TEST(FleetHttp, ServesRoutesParsesQueriesAndRejectsUnknown) {
  obs::fleet::HttpEndpoint http;
  http.handle("/ping", [](const obs::fleet::HttpRequest& req) {
    obs::fleet::HttpResponse r;
    std::ostringstream body;
    body << "pong";
    for (const auto& [k, v] : req.query) body << " " << k << "=" << v;
    r.body = body.str();
    return r;
  });
  std::string error;
  ASSERT_TRUE(http.start("127.0.0.1", 0, &error)) << error;
  ASSERT_GT(http.port(), 0);

  const std::string ok = http_get(http.port(), "/ping?worker=3&outcome=failure");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(ok.find("pong outcome=failure worker=3"), std::string::npos);

  const std::string head = http_get(http.port(), "/ping", "HEAD");
  EXPECT_NE(head.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(head.find("pong"), std::string::npos);

  const std::string missing = http_get(http.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  // The 404 body is fixed and bounded — no echo of the requested path.
  EXPECT_NE(missing.find("Content-Length: 10"), std::string::npos);
  EXPECT_NE(missing.find("not found\n"), std::string::npos);
  EXPECT_EQ(missing.find("/nope"), std::string::npos);
  EXPECT_NE(http_get(http.port(), "/ping", "POST").find("HTTP/1.0 405"),
            std::string::npos);
  http.stop();
}

TEST(FleetHttp, HealthzIsBuiltInAndUserRoutesCanOverrideIt) {
  obs::fleet::HttpEndpoint::Options opts;
  opts.version = "fleet-test-1.2";
  obs::fleet::HttpEndpoint http(opts);
  std::string error;
  ASSERT_TRUE(http.start("127.0.0.1", 0, &error)) << error;

  // No registration needed: every endpoint answers the liveness probe.
  const std::string healthz = http_get(http.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(healthz.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"version\":\"fleet-test-1.2\""), std::string::npos);
  EXPECT_NE(healthz.find("\"uptime_s\":"), std::string::npos);

  // HEAD gets the same status with an empty body.
  const std::string head = http_get(http.port(), "/healthz", "HEAD");
  EXPECT_NE(head.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_EQ(head.find("status"), std::string::npos);
  http.stop();

  // A user handler on the same path wins over the built-in.
  obs::fleet::HttpEndpoint custom;
  custom.handle("/healthz", [](const obs::fleet::HttpRequest&) {
    return obs::fleet::HttpResponse{200, "text/plain; charset=utf-8", "custom"};
  });
  ASSERT_TRUE(custom.start("127.0.0.1", 0, &error)) << error;
  const std::string overridden = http_get(custom.port(), "/healthz");
  EXPECT_NE(overridden.find("custom"), std::string::npos);
  EXPECT_EQ(overridden.find("uptime_s"), std::string::npos);
  custom.stop();
}

// A client that connects and never sends costs the endpoint at most one
// bounded read timeout; later requests still succeed.
TEST(FleetHttp, SilentClientCannotWedgeTheEndpoint) {
  obs::fleet::HttpEndpoint::Options opts;
  opts.io_timeout_ms = 200;
  obs::fleet::HttpEndpoint http(opts);
  http.handle("/ping", [](const obs::fleet::HttpRequest&) {
    return obs::fleet::HttpResponse{200, "text/plain; charset=utf-8", "pong"};
  });
  std::string error;
  ASSERT_TRUE(http.start("127.0.0.1", 0, &error)) << error;

  std::string cerr2;
  dist::Socket silent = dist::tcp_connect("127.0.0.1", http.port(), 2000, 3, &cerr2);
  ASSERT_TRUE(silent.valid()) << cerr2;
  // Leave `silent` open and mute; the endpoint must time it out and move on.
  EXPECT_NE(http_get(http.port(), "/ping").find("pong"), std::string::npos);
  http.stop();
}

// The acceptance test for the live endpoint: concurrent scrapes during an
// active campaign always see valid Prometheus text and never block the
// campaign to a halt.
TEST(FleetHttp, ConcurrentScrapesDuringActiveCampaignStayValid) {
  obs::MetricsRegistry metrics;
  obs::fleet::FleetEventLog events;
  obs::fleet::StatusBoard board;
  obs::fleet::StallDetector stall(&metrics, &events);

  obs::fleet::HttpEndpoint http;
  http.handle("/metrics", [&metrics](const obs::fleet::HttpRequest&) {
    return obs::fleet::HttpResponse{200, "text/plain; charset=utf-8",
                                    metrics.prometheus_text()};
  });
  http.handle("/status", [&board, &events](const obs::fleet::HttpRequest&) {
    return obs::fleet::HttpResponse{200, "application/json",
                                    board.status_json(&events)};
  });
  std::string error;
  ASSERT_TRUE(http.start("127.0.0.1", 0, &error)) << error;

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string text = http_get(http.port(), "/metrics");
      ASSERT_NE(text.find("HTTP/1.0 200"), std::string::npos);
      const std::string status = http_get(http.port(), "/status");
      ASSERT_NE(status.find("\"campaign\""), std::string::npos);
      scrapes.fetch_add(1);
    }
  });

  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 12);
  exec::ExecOptions eo;
  eo.jobs = 2;
  eo.metrics = &metrics;
  eo.stall = &stall;
  eo.status = &board;
  const exec::CampaignResult result = exec::CampaignExecutor(eo).run(cfg, list, 7);
  done.store(true);
  scraper.join();

  ASSERT_FALSE(result.runs.empty());
  EXPECT_GT(scrapes.load(), 0);
  // The final scrape of a finished campaign parses as Prometheus text with
  // the campaign's own counters present.
  const std::string text = metrics.prometheus_text();
  EXPECT_NE(text.find("# TYPE dts_runs_total counter"), std::string::npos);
  http.stop();
}

// --- journal v3 execution indices ----------------------------------------

TEST(FleetSpan, JournalRecordsCarryExecutionIndices) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);
  const std::string journal = temp_path("fleet_xi.jsonl");
  std::filesystem::remove(journal);

  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  const exec::CampaignResult result = exec::CampaignExecutor(eo).run(cfg, list, 7);
  ASSERT_GT(result.executed, 0u);

  std::string error;
  const auto file = exec::read_journal_file(journal, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(file->version, 5u);
  ASSERT_FALSE(file->records.empty());
  for (const auto& rec : file->records) {
    // In-process: digest/0/fault_index.
    std::ostringstream expected_suffix;
    expected_suffix << "/0/" << rec.index;
    ASSERT_FALSE(rec.exec_index.empty());
    EXPECT_EQ(rec.exec_index.size() - rec.exec_index.find('/'),
              expected_suffix.str().size());
    EXPECT_NE(rec.exec_index.find(expected_suffix.str()), std::string::npos);
  }
  // All records of one campaign share one digest.
  const std::string digest =
      file->records[0].exec_index.substr(0, file->records[0].exec_index.find('/'));
  EXPECT_EQ(digest.size(), 16u);
  for (const auto& rec : file->records) {
    EXPECT_EQ(rec.exec_index.substr(0, 16), digest);
  }
}

// --- worker telemetry totals vs the journal ------------------------------

// The tentpole acceptance bar: with telemetry on, the per-worker run totals
// merged into the coordinator registry sum exactly to the journal's record
// count — the fleet view and the durable record agree run for run.
TEST(FleetTelemetry, WorkerRunTotalsSumExactlyToJournalRecords) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 12);
  const std::string journal = temp_path("fleet_totals.jsonl");
  std::filesystem::remove(journal);

  obs::MetricsRegistry metrics;
  obs::fleet::FleetEventLog events;
  dist::DistOptions d;
  d.spawn_workers = 2;
  d.journal_path = journal;
  d.metrics = &metrics;
  d.events = &events;
  d.telemetry_ms = 50;
  dist::Coordinator coordinator(cfg, list, 7, d);
  const exec::CampaignResult result = coordinator.run();
  ASSERT_FALSE(result.runs.empty());

  std::uint64_t worker_runs = 0;
  bool saw_worker_child = false;
  for (const auto& s : metrics.snapshot()) {
    if (s.name != "dts_runs_total") continue;
    if (s.labels.find("worker=\"") == std::string::npos) continue;
    saw_worker_child = true;
    worker_runs += s.counter_value;
  }
  ASSERT_TRUE(saw_worker_child);
  EXPECT_GT(metrics.counter("dts_fleet_telemetry_frames_total").value(), 0u);

  std::string error;
  const auto file = exec::read_journal_file(journal, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(worker_runs, file->records.size());

  // Distributed records carry their lease in the execution index (never 0).
  for (const auto& rec : file->records) {
    const std::size_t slash = rec.exec_index.find('/');
    ASSERT_NE(slash, std::string::npos);
    EXPECT_NE(rec.exec_index[slash + 1], '0');
  }
}

// --- journal compat + report ---------------------------------------------

/// Rewrites a current (v5) journal file as its v2 ancestor: version 2
/// header, embedded "config" dropped, "xi"/"td"/"cc"/"fm" fields stripped.
void downgrade_journal_to_v2(const std::string& path, const std::string& out) {
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  std::ofstream dst(out, std::ios::trunc);
  for (std::string line : lines) {
    const auto header = line.find("\"dts_journal\":5");
    if (header != std::string::npos) {
      line.replace(header, 15, "\"dts_journal\":2");
      // "config" is the header's last field; keep the closing brace.
      const auto config = line.find(",\"config\":\"");
      if (config != std::string::npos) line.erase(config, line.size() - 1 - config);
    }
    for (const char* field : {",\"xi\":\"", ",\"td\":\"", ",\"cc\":\"", ",\"fm\":\""}) {
      const auto at = line.find(field);
      if (at == std::string::npos) continue;
      const auto end = line.find('"', at + std::string(field).size());
      ASSERT_NE(end, std::string::npos);
      line.erase(at, end - at + 1);
    }
    dst << line << "\n";
  }
}

TEST(FleetJournalCompat, V2JournalsResumeUnderV3ReaderWithNothingReExecuted) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 8);
  const std::string journal = temp_path("fleet_v2compat.jsonl");
  std::filesystem::remove(journal);

  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = journal;
  const exec::CampaignResult full = exec::CampaignExecutor(eo).run(cfg, list, 7);
  ASSERT_GT(full.executed, 0u);

  downgrade_journal_to_v2(journal, journal);

  exec::ExecOptions again;
  again.jobs = 2;
  again.journal_path = journal;
  again.resume = true;
  const exec::CampaignResult resumed = exec::CampaignExecutor(again).run(cfg, list, 7);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.reused, full.executed);
}

TEST(FleetReport, MixedVersionMergeDeduplicatesAndMatchesAggregateCounts) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 10);
  const std::string v3_path = temp_path("fleet_report_v3.jsonl");
  const std::string v2_path = temp_path("fleet_report_v2.jsonl");
  std::filesystem::remove(v3_path);

  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = v3_path;
  const exec::CampaignResult result = exec::CampaignExecutor(eo).run(cfg, list, 7);
  ASSERT_GT(result.executed, 0u);
  downgrade_journal_to_v2(v3_path, v2_path);

  std::string error;
  const auto v3 = exec::read_journal_file(v3_path, &error);
  ASSERT_TRUE(v3.has_value()) << error;
  const auto v2 = exec::read_journal_file(v2_path, &error);
  ASSERT_TRUE(v2.has_value()) << error;
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->records.size(), v3->records.size());

  // Merging a journal with its own downgraded copy must change nothing but
  // the duplicate count: every v2 record dedups against its v3 twin.
  const obs::fleet::FleetReport merged = obs::fleet::build_report({*v3, *v2});
  const obs::fleet::FleetReport solo = obs::fleet::build_report({*v3});
  ASSERT_EQ(merged.groups.size(), 1u);
  EXPECT_EQ(merged.records, solo.records);
  EXPECT_EQ(merged.records, v3->records.size());
  EXPECT_EQ(merged.duplicates, v2->records.size());
  EXPECT_EQ(merged.outcomes, solo.outcomes);
  EXPECT_EQ(merged.groups[0].min_version, 2u);
  EXPECT_EQ(merged.groups[0].max_version, 5u);

  // The aggregate outcome counts reproduce the executor's own results.
  std::array<std::uint64_t, 5> expected{};
  for (const auto& run : result.runs) {
    ++expected[static_cast<std::size_t>(run.outcome)];
  }
  EXPECT_EQ(merged.outcomes, expected);

  // Both renderers mention the merged schema range and every outcome column.
  const std::string md = obs::fleet::render_report_markdown(merged);
  EXPECT_NE(md.find("schema versions 2..5"), std::string::npos);
  EXPECT_NE(md.find("## Outcome matrix"), std::string::npos);
  const std::string html = obs::fleet::render_report_html(merged);
  EXPECT_NE(html.find("<table>"), std::string::npos);
}

TEST(FleetReport, DistinctCampaignsStaySeparateGroups) {
  const core::RunConfig cfg = make_config("Apache1");
  const inject::FaultList list = capped_list(cfg, 7, 6);
  const std::string a_path = temp_path("fleet_report_a.jsonl");
  const std::string b_path = temp_path("fleet_report_b.jsonl");
  std::filesystem::remove(a_path);
  std::filesystem::remove(b_path);

  exec::ExecOptions eo;
  eo.jobs = 1;
  eo.journal_path = a_path;
  exec::CampaignExecutor(eo).run(cfg, list, 7);
  eo.journal_path = b_path;
  exec::CampaignExecutor(eo).run(cfg, list, 11);  // different seed

  std::string error;
  const auto a = exec::read_journal_file(a_path, &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = exec::read_journal_file(b_path, &error);
  ASSERT_TRUE(b.has_value()) << error;

  const obs::fleet::FleetReport report = obs::fleet::build_report({*a, *b});
  EXPECT_EQ(report.groups.size(), 2u);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.records, a->records.size() + b->records.size());
  // Multi-group reports render a total row.
  EXPECT_NE(obs::fleet::render_report_markdown(report).find("| total |"),
            std::string::npos);
}

}  // namespace
}  // namespace dts
