// Tests for the simulated NT kernel: processes, threads, syscalls, crash
// semantics, kernel objects, pipes, SCM, and the event log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"
#include "ntsim/scm.h"
#include "sim/simulation.h"

namespace dts::nt {
namespace {

using sim::Duration;

struct World {
  sim::Simulation simu{42};
  Machine m{simu, MachineConfig{.name = "target", .cpu_scale = 1.0}};
};

// Convenience: run one program to completion and return its exit record.
ProcessExitRecord run_program(World& w, Machine::ProgramMain main_fn,
                              Duration limit = Duration::seconds(600)) {
  w.m.register_program("test.exe", std::move(main_fn));
  const Pid pid = w.m.start_process("test.exe", "test.exe");
  EXPECT_NE(pid, 0u);
  w.simu.run_until(w.simu.now() + limit);
  for (const auto& rec : w.m.exit_history()) {
    if (rec.pid == pid) return rec;
  }
  ADD_FAILURE() << "process did not exit within the time limit";
  return {};
}

TEST(Kernel, ProgramRunsAndExits) {
  World w;
  int steps = 0;
  auto rec = run_program(w, [&](Ctx c) -> sim::Task {
    ++steps;
    co_await sleep_in_sim(c, Duration::millis(5));
    ++steps;
  });
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(rec.exit_code, 0u);
  EXPECT_EQ(w.m.live_processes(), 0u);
}

TEST(Kernel, SyscallsChargeTime) {
  World w;
  sim::Duration elapsed{};
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const auto t0 = c.m().sim().now();
    for (int i = 0; i < 10; ++i) (void)co_await k.call(c, Fn::GetCurrentProcessId);
    elapsed = c.m().sim().now() - t0;
  });
  EXPECT_GE(elapsed, Kernel32::kBaseCost * 10);
}

TEST(Kernel, AccessViolationCrashesProcess) {
  World w;
  auto rec = run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    // GetStartupInfoA writes through the pointer in user mode: corrupted
    // pointer = crash.
    (void)co_await k.call(c, Fn::GetStartupInfoA, 0);
    ADD_FAILURE() << "should have crashed";
  });
  EXPECT_EQ(rec.exit_code, kExitCodeAccessViolation);
  EXPECT_EQ(w.m.crashes_of("test.exe"), 1u);
}

TEST(Kernel, BadHandleIsErrorNotCrash) {
  World w;
  Word result = 99;
  Word error = 0;
  auto rec = run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    result = co_await k.call(c, Fn::SetEvent, 0x12345678);
    error = co_await k.call(c, Fn::GetLastError);
  });
  EXPECT_EQ(result, 0u);
  EXPECT_EQ(error, to_dword(Win32Error::kInvalidHandle));
  EXPECT_EQ(rec.exit_code, 0u);
}

TEST(Kernel, EventSignalsAcrossThreads) {
  World w;
  std::vector<int> order;
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word ev = co_await k.call(c, Fn::CreateEventA, 0, 1, 0, 0);
    EXPECT_NE(ev, 0u);

    const Word routine = c.process->register_routine(
        [&, ev](Ctx tc, Word) -> sim::Task {
          co_await sleep_in_sim(tc, Duration::millis(50));
          order.push_back(1);
          (void)co_await tc.m().k32().call(tc, Fn::SetEvent, ev);
        });
    const Word th = co_await k.call(c, Fn::CreateThread, 0, 0, routine, 0, 0, 0);
    EXPECT_NE(th, 0u);

    const Word r = co_await k.call(c, Fn::WaitForSingleObject, ev, kInfinite);
    EXPECT_EQ(r, kWaitObject0);
    order.push_back(2);
    (void)co_await k.call(c, Fn::WaitForSingleObject, th, kInfinite);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, WaitTimesOut) {
  World w;
  Word r = 0;
  sim::Duration waited{};
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word ev = co_await k.call(c, Fn::CreateEventA, 0, 1, 0, 0);
    const auto t0 = c.m().sim().now();
    r = co_await k.call(c, Fn::WaitForSingleObject, ev, 200);
    waited = c.m().sim().now() - t0;
  });
  EXPECT_EQ(r, kWaitTimeout);
  EXPECT_GE(waited, Duration::millis(200));
  EXPECT_LT(waited, Duration::millis(400));
}

TEST(Kernel, CorruptedThreadStartAddressCrashes) {
  World w;
  auto rec = run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    // A corrupted lpStartAddress creates a thread that faults immediately,
    // taking the process down.
    (void)co_await k.call(c, Fn::CreateThread, 0, 0, 0xDEAD0000, 0, 0, 0);
    co_await sleep_in_sim(c, Duration::seconds(10));
  });
  EXPECT_EQ(rec.exit_code, kExitCodeAccessViolation);
}

TEST(Kernel, ParentWaitsOnChildProcess) {
  World w;
  w.m.register_program("child.exe", [](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(100));
    (void)co_await c.m().k32().call(c, Fn::ExitProcess, 7);
  });
  Word exit_code = 999;
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Ptr cmd = c.process->mem().alloc_cstr("child.exe");
    const Ptr pi = c.process->mem().alloc(16);
    const Word ok = co_await k.call(c, Fn::CreateProcessA, 0, cmd.addr, 0, 0, 0,
                                    0, 0, 0, 0, pi.addr);
    EXPECT_EQ(ok, 1u);
    const Word h_child = c.process->mem().read_u32(pi);
    const Word r = co_await k.call(c, Fn::WaitForSingleObject, h_child, kInfinite);
    EXPECT_EQ(r, kWaitObject0);
    const Ptr code_out = c.process->mem().alloc(4);
    (void)co_await k.call(c, Fn::GetExitCodeProcess, h_child, code_out.addr);
    exit_code = c.process->mem().read_u32(code_out);
  });
  EXPECT_EQ(exit_code, 7u);
}

TEST(Kernel, TerminateProcessKillsTarget) {
  World w;
  w.m.register_program("victim.exe", [](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::seconds(1000));  // would run forever
  });
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Ptr cmd = c.process->mem().alloc_cstr("victim.exe");
    const Ptr pi = c.process->mem().alloc(16);
    EXPECT_EQ(co_await k.call(c, Fn::CreateProcessA, 0, cmd.addr, 0, 0, 0, 0, 0, 0, 0, pi.addr),
              1u);
    const Word h = c.process->mem().read_u32(pi);
    EXPECT_EQ(co_await k.call(c, Fn::TerminateProcess, h, 42), 1u);
    EXPECT_EQ(co_await k.call(c, Fn::WaitForSingleObject, h, 5000), kWaitObject0);
  });
  EXPECT_EQ(w.m.live_processes(), 0u);
}

TEST(Kernel, PipesCarryDataBetweenProcesses) {
  World w;
  std::string received;
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    const Ptr handles = mem.alloc(8);
    EXPECT_EQ(co_await k.call(c, Fn::CreatePipe, handles.addr, handles.addr + 4, 0, 0), 1u);
    const Word h_read = mem.read_u32(handles);
    const Word h_write = mem.read_u32(handles.offset(4));

    const Ptr msg = mem.alloc_cstr("through the pipe");
    EXPECT_EQ(co_await k.call(c, Fn::WriteFile, h_write, msg.addr, 16, 0, 0), 1u);
    (void)co_await k.call(c, Fn::CloseHandle, h_write);

    const Ptr buf = mem.alloc(64);
    const Ptr n_out = mem.alloc(4);
    EXPECT_EQ(co_await k.call(c, Fn::ReadFile, h_read, buf.addr, 64, n_out.addr, 0), 1u);
    received = mem.read_bytes(buf, mem.read_u32(n_out));

    // After the writer closed, the next read reports a broken pipe.
    EXPECT_EQ(co_await k.call(c, Fn::ReadFile, h_read, buf.addr, 64, n_out.addr, 0), 0u);
    EXPECT_EQ(co_await k.call(c, Fn::GetLastError),
              to_dword(Win32Error::kBrokenPipe));
  });
  EXPECT_EQ(received, "through the pipe");
}

TEST(Kernel, FileRoundTripThroughSyscalls) {
  World w;
  w.m.fs().put_file("C:\\data\\in.txt", "file contents here");
  std::string read_back;
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    auto& mem = c.process->mem();
    const Ptr name = mem.alloc_cstr("C:\\data\\in.txt");
    const Word h = co_await k.call(c, Fn::CreateFileA, name.addr, kGenericRead, 0,
                                   0, kOpenExisting, 0, 0);
    EXPECT_NE(h, kInvalidHandleValue);
    const Word size = co_await k.call(c, Fn::GetFileSize, h, 0);
    const Ptr buf = mem.alloc(size);
    const Ptr n_out = mem.alloc(4);
    EXPECT_EQ(co_await k.call(c, Fn::ReadFile, h, buf.addr, size, n_out.addr, 0), 1u);
    read_back = mem.read_bytes(buf, mem.read_u32(n_out));
    (void)co_await k.call(c, Fn::CloseHandle, h);
  });
  EXPECT_EQ(read_back, "file contents here");
}

TEST(Kernel, CorruptedSleepParameterHangsThread) {
  World w;
  bool reached_end = false;
  w.m.register_program("test.exe", [&](Ctx c) -> sim::Task {
    // Sleep with all bits set = INFINITE: the thread hangs forever.
    (void)co_await c.m().k32().call(c, Fn::Sleep, 0xFFFFFFFF);
    reached_end = true;
  });
  const Pid pid = w.m.start_process("test.exe", "test.exe");
  w.simu.run_until(w.simu.now() + Duration::seconds(3600));
  EXPECT_FALSE(reached_end);
  EXPECT_TRUE(w.m.alive(pid));  // hung, not dead
}

TEST(Kernel, MutexAbandonedOnCrash) {
  World w;
  Word wait_result = 0;
  w.m.register_program("holder.exe", [](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Ptr name = c.process->mem().alloc_cstr("Global\\TestMutex");
    (void)co_await k.call(c, Fn::CreateMutexA, 0, 1, name.addr);
    co_await sleep_in_sim(c, Duration::millis(100));
    throw AccessViolation{0xBAD, false};  // crash while holding the mutex
  });
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    c.m().start_process("holder.exe", "holder.exe");
    co_await sleep_in_sim(c, Duration::millis(20));
    const Ptr name = c.process->mem().alloc_cstr("Global\\TestMutex");
    const Word h = co_await k.call(c, Fn::OpenMutexA, 0, 0, name.addr);
    EXPECT_NE(h, 0u);
    wait_result = co_await k.call(c, Fn::WaitForSingleObject, h, 10000);
  });
  EXPECT_EQ(wait_result, kWaitAbandoned);
}

TEST(Kernel, TlsPerThreadValues) {
  World w;
  Word main_val = 0, thread_val = 0;
  run_program(w, [&](Ctx c) -> sim::Task {
    auto& k = c.m().k32();
    const Word slot = co_await k.call(c, Fn::TlsAlloc);
    (void)co_await k.call(c, Fn::TlsSetValue, slot, 111);
    const Word done = co_await k.call(c, Fn::CreateEventA, 0, 1, 0, 0);
    const Word routine = c.process->register_routine(
        [&, slot, done](Ctx tc, Word) -> sim::Task {
          auto& tk = tc.m().k32();
          (void)co_await tk.call(tc, Fn::TlsSetValue, slot, 222);
          thread_val = co_await tk.call(tc, Fn::TlsGetValue, slot);
          (void)co_await tk.call(tc, Fn::SetEvent, done);
        });
    (void)co_await k.call(c, Fn::CreateThread, 0, 0, routine, 0, 0, 0);
    (void)co_await k.call(c, Fn::WaitForSingleObject, done, kInfinite);
    main_val = co_await k.call(c, Fn::TlsGetValue, slot);
  });
  EXPECT_EQ(main_val, 111u);
  EXPECT_EQ(thread_val, 222u);
}

// ---------------------------------------------------------------- SCM

struct ScmWorld : World {
  ScmWorld() {
    m.register_program("svc.exe", [](Ctx c) -> sim::Task {
      co_await sleep_in_sim(c, Duration::millis(500));  // init work
      c.m().scm().set_service_status(c.process->pid(), ServiceState::kRunning);
      co_await sleep_in_sim(c, Duration::seconds(1000000));  // serve forever
    });
    m.scm().register_service(ServiceConfig{
        .name = "TestSvc",
        .image = "svc.exe",
        .command_line = "svc.exe",
        .start_wait_hint = Duration::seconds(30),
    });
  }
};

TEST(Scm, StartReachesRunning) {
  ScmWorld w;
  EXPECT_EQ(w.m.scm().start_service("TestSvc"), Win32Error::kSuccess);
  EXPECT_EQ(w.m.scm().query("TestSvc")->state, ServiceState::kStartPending);
  EXPECT_TRUE(w.m.scm().database_locked());
  w.simu.run_until(w.simu.now() + Duration::seconds(2));
  EXPECT_EQ(w.m.scm().query("TestSvc")->state, ServiceState::kRunning);
  EXPECT_FALSE(w.m.scm().database_locked());
  EXPECT_EQ(w.m.scm().starts(), 1u);
}

TEST(Scm, StartWhileLockedIsDenied) {
  ScmWorld w;
  w.m.scm().register_service(ServiceConfig{"Other", "svc.exe", "svc.exe",
                                           Duration::seconds(30)});
  EXPECT_EQ(w.m.scm().start_service("TestSvc"), Win32Error::kSuccess);
  // While TestSvc is StartPending, the database is locked for everyone.
  EXPECT_EQ(w.m.scm().start_service("Other"), Win32Error::kServiceDatabaseLocked);
  EXPECT_EQ(w.m.scm().start_service("TestSvc"), Win32Error::kServiceDatabaseLocked);
  w.simu.run_until(w.simu.now() + Duration::seconds(2));
  EXPECT_EQ(w.m.scm().start_service("Other"), Win32Error::kSuccess);
}

TEST(Scm, CrashWhileRunningDropsToStopped) {
  ScmWorld w;
  w.m.scm().start_service("TestSvc");
  w.simu.run_until(w.simu.now() + Duration::seconds(2));
  const Pid pid = w.m.scm().query("TestSvc")->pid;
  w.m.request_process_exit(pid, kExitCodeAccessViolation, "injected crash");
  w.simu.run_until(w.simu.now() + Duration::millis(10));
  EXPECT_EQ(w.m.scm().query("TestSvc")->state, ServiceState::kStopped);
  // The crash is visible in the event log.
  EXPECT_EQ(w.m.event_log().count("Service Control Manager", 7031), 1u);
}

TEST(Scm, DeathDuringStartPendingHoldsLockUntilHintExpires) {
  // The paper's key SCM behaviour: a service dying right after start leaves
  // the SCM in StartPending (database locked) until the wait hint expires.
  ScmWorld w;
  w.m.register_program("dies.exe", [](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::millis(50));
    throw AccessViolation{0xBAD, false};
  });
  w.m.scm().register_service(ServiceConfig{"Dies", "dies.exe", "dies.exe",
                                           Duration::seconds(30)});
  EXPECT_EQ(w.m.scm().start_service("Dies"), Win32Error::kSuccess);
  w.simu.run_until(w.simu.now() + Duration::seconds(5));
  // Process is long dead, but the SCM still says StartPending and the
  // database stays locked.
  EXPECT_EQ(w.m.scm().query("Dies")->state, ServiceState::kStartPending);
  EXPECT_TRUE(w.m.scm().database_locked());
  EXPECT_EQ(w.m.scm().start_service("Dies"), Win32Error::kServiceDatabaseLocked);
  // After the wait hint, the service drops to Stopped and the lock clears.
  w.simu.run_until(w.simu.now() + Duration::seconds(30));
  EXPECT_EQ(w.m.scm().query("Dies")->state, ServiceState::kStopped);
  EXPECT_FALSE(w.m.scm().database_locked());
  EXPECT_EQ(w.m.scm().start_service("Dies"), Win32Error::kSuccess);
}

TEST(Scm, HungStartIsKilledAtDeadline) {
  ScmWorld w;
  w.m.register_program("hang.exe", [](Ctx c) -> sim::Task {
    co_await sleep_in_sim(c, Duration::seconds(1000000));  // never reports
  });
  w.m.scm().register_service(ServiceConfig{"Hang", "hang.exe", "hang.exe",
                                           Duration::seconds(10)});
  w.m.scm().start_service("Hang");
  w.simu.run_until(w.simu.now() + Duration::seconds(15));
  EXPECT_EQ(w.m.scm().query("Hang")->state, ServiceState::kStopped);
  EXPECT_EQ(w.m.live_processes(), 0u);
}

TEST(Scm, ControlStopStopsService) {
  ScmWorld w;
  w.m.scm().start_service("TestSvc");
  w.simu.run_until(w.simu.now() + Duration::seconds(2));
  EXPECT_EQ(w.m.scm().control_stop("TestSvc"), Win32Error::kSuccess);
  w.simu.run_until(w.simu.now() + Duration::millis(100));
  EXPECT_EQ(w.m.scm().query("TestSvc")->state, ServiceState::kStopped);
  EXPECT_EQ(w.m.scm().control_stop("TestSvc"), Win32Error::kServiceNotActive);
}

TEST(Scm, QueryExposesProcessWhileAlive) {
  ScmWorld w;
  w.m.scm().start_service("TestSvc");
  w.simu.run_until(w.simu.now() + Duration::millis(100));
  auto st = w.m.scm().query("TestSvc");
  ASSERT_TRUE(st);
  EXPECT_NE(st->process, nullptr);  // alive: handle available
  w.m.request_process_exit(st->pid, 1, "test kill");
  w.simu.run_until(w.simu.now() + Duration::millis(10));
  EXPECT_EQ(w.m.scm().query("TestSvc")->process, nullptr);  // dead: no handle
}

}  // namespace
}  // namespace dts::nt
