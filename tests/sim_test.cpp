// Tests for the discrete-event simulation engine: time, RNG, event queue,
// simulation loop, and the coroutine task machinery.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace dts::sim {
namespace {

// ---------------------------------------------------------------- time

TEST(Time, DurationArithmetic) {
  auto a = Duration::millis(1500);
  auto b = Duration::seconds(2);
  EXPECT_EQ((a + b).count_micros(), 3'500'000);
  EXPECT_EQ((b - a).count_millis(), 500);
  EXPECT_EQ((a * 2).count_millis(), 3000);
  EXPECT_EQ((b / 4).count_millis(), 500);
  EXPECT_LT(a, b);
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE((a - b).is_negative());
}

TEST(Time, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).count_micros(), 1'500'000);
  EXPECT_EQ(Duration::from_seconds(0.0000005).count_micros(), 1);
  EXPECT_DOUBLE_EQ(Duration::seconds(3).to_seconds(), 3.0);
}

TEST(Time, TimePointArithmetic) {
  TimePoint t0;
  auto t1 = t0 + Duration::seconds(5);
  EXPECT_EQ((t1 - t0).count_micros(), 5'000'000);
  EXPECT_GT(t1, t0);
  t1 += Duration::millis(1);
  EXPECT_EQ((t1 - t0).count_millis(), 5001);
}

TEST(Time, ToString) {
  EXPECT_EQ(to_string(Duration::from_seconds(14.21)), "14.21s");
  EXPECT_EQ(to_string(Duration::millis(350)), "350ms");
  EXPECT_EQ(to_string(Duration::micros(42)), "42us");
}

// ---------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng r{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01Bounds) {
  Rng r{3};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r{5};
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, SplitIndependent) {
  Rng root{9};
  Rng a = root.split(1);
  Rng b = root.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, HashStable) {
  EXPECT_EQ(Rng::hash("CreateEventA"), Rng::hash("CreateEventA"));
  EXPECT_NE(Rng::hash("CreateEventA"), Rng::hash("CreateEventW"));
  EXPECT_NE(Rng::hash(""), Rng::hash("a"));
}

// ---------------------------------------------------------------- simulation

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{} + Duration::millis(30));
}

TEST(Simulation, SameInstantIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] {
    sim.schedule(Duration::millis(1), [&] { fired = 1; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now() - TimePoint{}, Duration::millis(2));
}

TEST(Simulation, RunUntilAdvancesClockExactly) {
  Simulation sim;
  int fired = 0;
  sim.schedule(Duration::seconds(100), [&] { fired = 1; });
  sim.run_until(TimePoint{} + Duration::seconds(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), TimePoint{} + Duration::seconds(10));
  sim.run_for(Duration::seconds(90));
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, StopHaltsLoop) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_GT(sim.pending_events(), 0u);
}

TEST(Simulation, PastScheduleClampsToNow) {
  Simulation sim;
  sim.run_until(TimePoint{} + Duration::seconds(5));
  int fired = 0;
  sim.schedule_at(TimePoint{} + Duration::seconds(1), [&] { fired = 1; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + Duration::seconds(5));
}

TEST(Simulation, EventBudgetThrows) {
  Simulation sim;
  sim.set_event_budget(100);
  std::function<void()> loop = [&] { sim.schedule(Duration{}, loop); };
  sim.schedule(Duration{}, loop);
  EXPECT_THROW(sim.run(), SimBudgetExhausted);
}

// ---------------------------------------------------------------- tasks

Task counting_task(Simulation& sim, int& counter) {
  for (int i = 0; i < 3; ++i) {
    ++counter;
    auto tok = std::make_shared<WakeToken>();
    sim.schedule(Duration::millis(10), [&sim, tok] { wake(sim, tok, WakeReason::kSignaled); });
    co_await WaitOn{tok};
  }
}

TEST(Task, RunsAcrossSuspensions) {
  Simulation sim;
  int counter = 0;
  Task t = counting_task(sim, counter);
  bool completed = false;
  t.on_complete([&](std::exception_ptr e) {
    completed = true;
    EXPECT_EQ(e, nullptr);
  });
  t.start(sim);
  sim.run();
  EXPECT_EQ(counter, 3);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(t.done());
}

Task throwing_task() {
  throw std::runtime_error("boom");
  co_return;  // unreachable; makes this a coroutine
}

TEST(Task, ExceptionReachesCallback) {
  Simulation sim;
  Task t = throwing_task();
  std::string msg;
  t.on_complete([&](std::exception_ptr e) {
    try {
      if (e) std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      msg = ex.what();
    }
  });
  t.start(sim);
  sim.run();
  EXPECT_EQ(msg, "boom");
}

Task blocked_forever(int& progress) {
  progress = 1;
  auto tok = std::make_shared<WakeToken>();
  co_await WaitOn{tok};  // nobody will ever wake this
  progress = 2;
}

TEST(Task, DestroyWhileSuspendedRunsDestructors) {
  Simulation sim;
  int progress = 0;
  {
    Task t = blocked_forever(progress);
    t.start(sim);
    sim.run();
    EXPECT_EQ(progress, 1);
  }  // Task destroyed here while suspended
  EXPECT_EQ(progress, 1);
  sim.run();  // queue empty, no crash
}

TEST(Task, DeadTokenNeverResumes) {
  Simulation sim;
  int progress = 0;
  auto tok = std::make_shared<WakeToken>();
  {
    // Hand-rolled: task waits on an external token we control.
    struct Body {
      static Task run(WakePtr tok, int& progress) {
        progress = 1;
        co_await WaitOn{tok};
        progress = 2;
      }
    };
    Task t = Body::run(tok, progress);
    t.start(sim);
    sim.run();
    EXPECT_EQ(progress, 1);
    // Queue a wake, THEN kill the task before the wake event runs.
    wake(sim, tok, WakeReason::kSignaled);
    tok->dead = true;
    t.destroy();
  }
  sim.run();  // the queued wake must be a no-op
  EXPECT_EQ(progress, 1);
}

TEST(Task, FirstWakeWins) {
  Simulation sim;
  auto tok = std::make_shared<WakeToken>();
  WakeReason got{};
  struct Body {
    static Task run(WakePtr tok, WakeReason& got) {
      got = co_await WaitOn{tok};
    }
  };
  Task t = Body::run(tok, got);
  t.start(sim);
  sim.run();
  wake(sim, tok, WakeReason::kTimeout);
  wake(sim, tok, WakeReason::kSignaled);  // loses the race
  sim.run();
  EXPECT_EQ(got, WakeReason::kTimeout);
}

CoTask<int> add_later(Simulation& sim, int a, int b) {
  auto tok = std::make_shared<WakeToken>();
  sim.schedule(Duration::millis(1), [&sim, tok] { wake(sim, tok, WakeReason::kSignaled); });
  co_await WaitOn{tok};
  co_return a + b;
}

Task uses_subtask(Simulation& sim, int& out) {
  out = co_await add_later(sim, 2, 3);
}

TEST(CoTask, ValuePropagates) {
  Simulation sim;
  int out = 0;
  Task t = uses_subtask(sim, out);
  t.start(sim);
  sim.run();
  EXPECT_EQ(out, 5);
}

CoTask<void> sub_throws() {
  throw std::logic_error("inner");
  co_return;
}

Task catches_subtask(std::string& msg) {
  try {
    co_await sub_throws();
  } catch (const std::exception& e) {
    msg = e.what();
  }
}

TEST(CoTask, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  std::string msg;
  Task t = catches_subtask(msg);
  t.start(sim);
  sim.run();
  EXPECT_EQ(msg, "inner");
}

CoTask<void> deep_block(WakePtr tok, int& progress) {
  progress = 1;
  co_await WaitOn{tok};
  progress = 2;
}

Task outer_block(WakePtr tok, int& progress) {
  co_await deep_block(tok, progress);
  progress = 3;
}

TEST(CoTask, DestroyTopFrameDestroysNestedFrame) {
  Simulation sim;
  int progress = 0;
  auto tok = std::make_shared<WakeToken>();
  {
    Task t = outer_block(tok, progress);
    t.start(sim);
    sim.run();
    EXPECT_EQ(progress, 1);
    tok->dead = true;
  }  // destroying the outer frame must destroy the suspended inner frame
  EXPECT_EQ(progress, 1);
}

// Determinism: two simulations with the same seed and same program produce
// identical event interleavings.
TEST(Simulation, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim{seed};
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      auto d = Duration::micros(sim.rng().uniform(0, 1000));
      sim.schedule(d, [&trace, &sim] { trace.push_back(sim.now().count_micros()); });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

// Snapshot-execution contract (src/snap/): reseed(seed, k) must land the
// generator exactly where a fresh Rng(seed) is after k raw draws — there is
// no hidden global state outside the four state words and the cursor. A
// forked run relies on this to swap in its per-fault seed mid-run while
// keeping the raw-draw alignment of the shared golden prefix.
TEST(Rng, ReseedReplayMatchesFreshGenerator) {
  Rng fresh(42);
  // Mix raw and rejection-sampled draws so the replay must count raw next()
  // calls, not API calls.
  for (int i = 0; i < 7; ++i) fresh.next();
  (void)fresh.uniform(0, 999);
  (void)fresh.uniform01();
  const std::uint64_t k = fresh.cursor();

  Rng other(7);  // arbitrary diverged generator, as in a forked child
  for (int i = 0; i < 3; ++i) other.next();
  other.reseed(42, k);

  EXPECT_EQ(other.state(), fresh.state());
  EXPECT_EQ(other.cursor(), fresh.cursor());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(other.next(), fresh.next());
}

// Simulation capture/restore rewinds clock, RNG (state + cursor) and event
// queue together: replaying from the snapshot reproduces the exact draws.
TEST(Simulation, CaptureRestoreReplaysRngDraws) {
  Simulation sim{99};
  for (int i = 0; i < 5; ++i) sim.rng().next();

  const Simulation::Snapshot snap = sim.capture();
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(sim.rng().next());

  sim.restore(snap);
  EXPECT_EQ(sim.rng().cursor(), 5u);
  std::vector<std::uint64_t> second;
  for (int i = 0; i < 16; ++i) second.push_back(sim.rng().next());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dts::sim
