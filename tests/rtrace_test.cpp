// Causal request-tracing tests (src/obs/rtrace/): wire-context round-trips,
// span collection, finalization (attribution conservation, exactly-one
// injection stamp, timing-independent path digest), serialization, and the
// traced seed three-tier campaign end-to-end — journal v7 "rt" trailers that
// reconcile with TopoRunStats, replay digest verification, signature path
// axis, and the no-context-leak invariant across failover. Labelled `rtrace`
// in CTest (part of both sanitizer presets).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/config.h"
#include "core/run.h"
#include "exec/journal.h"
#include "inject/fault.h"
#include "forensics/replay.h"
#include "forensics/signature.h"
#include "obs/fleet/status.h"
#include "obs/ring.h"
#include "obs/rtrace/rtrace.h"
#include "obs/span.h"

namespace dts {
namespace {

using obs::rtrace::RtraceMode;
using obs::rtrace::RunTrace;
using obs::rtrace::TraceLog;
using obs::rtrace::TraceSpan;

// The seed three-tier campaign of the README quickstart, traced: spans are
// collected every run and journaled for every non-masked one.
constexpr char kTracedThreeTierConfig[] =
    "[test]\n"
    "middleware = none\n"
    "seed = 7\n"
    "max_faults = 6\n"
    "\n"
    "[topology]\n"
    "topology = lb:2*apache -> app:2*iis -> db:1*sql_server\n"
    "tier = db\n"
    "rtrace = failures\n";

core::DtsConfig parse_or_die(const std::string& text) {
  std::string error;
  auto cfg = core::parse_config(text, &error);
  EXPECT_TRUE(cfg.has_value()) << error;
  return cfg.value();  // throws on failure, failing the test loudly
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TraceSpan make_span(int trace, int id, int parent, std::string name,
                    std::string tier, std::string replica, std::int64_t begin,
                    std::int64_t end, std::string outcome = "ok") {
  TraceSpan s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.name = std::move(name);
  s.tier = std::move(tier);
  s.replica = std::move(replica);
  s.begin_us = begin;
  s.end_us = end;
  s.outcome = std::move(outcome);
  return s;
}

// Nearest-rank percentile, mirroring core/run.cpp's percentile_us.
std::int64_t nearest_rank(std::vector<std::int64_t> sorted, double q) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

// --- wire context ---------------------------------------------------------

TEST(RtraceWire, TokenRoundTripsThroughRequestLines) {
  EXPECT_EQ(obs::rtrace::wire_token(7, 3), "rt=7:3");
  EXPECT_EQ(obs::rtrace::rewrite_wire("7", 7, 9), "REQ 7 rt=7:9\n");

  const auto ctx = obs::rtrace::parse_wire("REQ 7 rt=7:3\n");
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace, 7);
  EXPECT_EQ(ctx->span, 3);

  // A rewritten line parses back to the rewritten context.
  const auto again = obs::rtrace::parse_wire(obs::rtrace::rewrite_wire("7", 7, 12));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->span, 12);
}

TEST(RtraceWire, UntracedAndMalformedLinesCarryNoContext) {
  // The classic wire bytes (tracing off, or a pre-rtrace peer).
  EXPECT_FALSE(obs::rtrace::parse_wire("REQ 7\n").has_value());
  // Replies never carry context — it must not leak backwards.
  EXPECT_FALSE(obs::rtrace::parse_wire("OK 7\n").has_value());
  EXPECT_FALSE(obs::rtrace::parse_wire("ERR 7\n").has_value());
  // Malformed tokens are dropped, not misparsed.
  EXPECT_FALSE(obs::rtrace::parse_wire("REQ 7 rt=x:3\n").has_value());
  EXPECT_FALSE(obs::rtrace::parse_wire("REQ 7 rt=7\n").has_value());
  EXPECT_FALSE(obs::rtrace::parse_wire("REQ 7 rt=0:3\n").has_value());
  EXPECT_FALSE(obs::rtrace::parse_wire("REQ 7 rt=-1:3\n").has_value());
}

// --- span collection ------------------------------------------------------

TEST(RtraceLog, DisabledLogCollectsNothing) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.begin_span(1, 0, "request", "client", "control", 0), 0);
  log.end_span(0, 10, "ok");
  EXPECT_TRUE(log.spans().empty());
}

TEST(RtraceLog, AssignsBeginOrderIdsAndTakeResets) {
  TraceLog log;
  log.set_enabled(true);
  const int a = log.begin_span(1, 0, "request", "client", "control", 0);
  const int b = log.begin_span(1, a, "lb", "lb", "lb-1", 5);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  log.end_span(b, 90, "ok");
  log.end_span(a, 100, "ok");

  ASSERT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.spans()[0].outcome, "ok");
  EXPECT_EQ(log.spans()[1].parent, a);
  EXPECT_EQ(log.spans()[1].end_us, 90);

  const auto taken = log.take_spans();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(log.spans().empty());
  // Ids restart after take — the next run's spans are independent.
  EXPECT_EQ(log.begin_span(1, 0, "request", "client", "control", 0), 1);
}

// --- finalization ---------------------------------------------------------

TEST(RtraceFinalize, SelfTimeAttributionConservesRootDuration) {
  // One request through three tiers, fully nested: every span's self time is
  // its duration minus its direct children's, so the per-tier attribution of
  // the request must sum exactly to the end-to-end latency.
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 1, 0, "request", "client", "control", 0, 1000));
  spans.push_back(make_span(1, 2, 1, "lb", "lb", "lb-1", 100, 900));
  spans.push_back(make_span(1, 3, 2, "attempt", "lb", "app-1", 150, 850));
  spans.push_back(make_span(1, 4, 3, "app.check", "app", "app-1", 300, 700));

  const RunTrace rt = obs::rtrace::finalize_trace(std::move(spans), {});
  ASSERT_EQ(rt.requests.size(), 1u);
  const auto& req = rt.requests[0];
  EXPECT_TRUE(req.ok);
  EXPECT_EQ(req.elapsed_us, 1000);

  std::int64_t attributed = 0;
  for (const auto& tier : req.tiers) attributed += tier.total_us();
  EXPECT_EQ(attributed, req.elapsed_us);

  // The successful app.check is service time; everything else — connection
  // setup, relay overhead — lands in the queue bucket; nothing failed.
  for (const auto& tier : req.tiers) {
    if (tier.tier == "app") EXPECT_EQ(tier.service_us, 400);
    EXPECT_EQ(tier.retry_us, 0);
  }
}

TEST(RtraceFinalize, FailedAttemptsCountAsRetryTime) {
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 1, 0, "request", "client", "control", 0, 1000));
  // First backend times out, balancer fails over to a second that succeeds.
  spans.push_back(make_span(1, 2, 1, "attempt", "lb", "app-1", 100, 500, "timeout"));
  spans.push_back(make_span(1, 3, 1, "attempt", "lb", "app-2", 500, 900));

  const RunTrace rt = obs::rtrace::finalize_trace(std::move(spans), {});
  ASSERT_EQ(rt.requests.size(), 1u);
  std::int64_t retry = 0, attributed = 0;
  for (const auto& tier : rt.requests[0].tiers) {
    retry += tier.retry_us;
    attributed += tier.total_us();
  }
  EXPECT_EQ(retry, 400);  // the timed-out attempt, and only it
  EXPECT_EQ(attributed, rt.requests[0].elapsed_us);
}

TEST(RtraceFinalize, StampsExactlyOneInnermostInjectedSpan) {
  // Two spans on the faulted machine contain the firing instant; the
  // latest-started (innermost) one owns the corrupted call chain.
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 1, 0, "request", "client", "control", 0, 1000));
  spans.push_back(make_span(1, 2, 1, "relay", "db", "db-1", 100, 900));
  spans.push_back(make_span(1, 3, 2, "app.check", "db", "db-1", 200, 800, "err"));

  obs::rtrace::FinalizeParams p;
  p.injection_us = 500;
  p.injection_machine = "db-1";
  p.fault_id = "db/CreateFileA/arg0/zero";
  const RunTrace rt = obs::rtrace::finalize_trace(std::move(spans), p);

  EXPECT_EQ(rt.injected_span, 3);
  std::size_t stamped = 0;
  for (const auto& s : rt.spans) stamped += s.injected ? 1 : 0;
  EXPECT_EQ(stamped, 1u);
  ASSERT_EQ(rt.requests.size(), 1u);
  EXPECT_TRUE(rt.requests[0].injected);
  EXPECT_EQ(rt.fault_id, "db/CreateFileA/arg0/zero");
}

TEST(RtraceFinalize, InjectionOutsideEverySpanStampsNothing) {
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(1, 1, 0, "request", "client", "control", 0, 1000));

  obs::rtrace::FinalizeParams p;
  p.injection_us = 5000;  // after the workload finished
  p.injection_machine = "db-1";
  const RunTrace rt = obs::rtrace::finalize_trace(std::move(spans), p);
  EXPECT_EQ(rt.injected_span, 0);
  for (const auto& s : rt.spans) EXPECT_FALSE(s.injected);
}

TEST(RtraceFinalize, DigestNamesThePathNotTheTiming) {
  const auto build = [](std::int64_t shift, const std::string& outcome) {
    std::vector<TraceSpan> spans;
    spans.push_back(make_span(1, 1, 0, "request", "client", "control",
                              shift, shift + 1000, outcome));
    spans.push_back(make_span(1, 2, 1, "relay", "db", "db-1", shift + 100,
                              shift + 900));
    return obs::rtrace::finalize_trace(std::move(spans), {}).digest;
  };
  // Latency jitter must not split clusters…
  EXPECT_EQ(build(0, "ok"), build(7777, "ok"));
  // …but a different propagation fate must.
  EXPECT_NE(build(0, "ok"), build(0, "timeout"));
}

// --- serialization --------------------------------------------------------

TEST(RtraceSerialize, JournalPayloadRoundTrips) {
  std::vector<TraceSpan> spans;
  spans.push_back(make_span(2, 3, 0, "request", "client", "control", 10, 500));
  spans.push_back(make_span(2, 4, 3, "attempt", "lb", "app-2", 20, 480, "err"));
  obs::rtrace::FinalizeParams p;
  p.injection_us = 100;
  p.injection_machine = "app-2";
  p.fault_id = "db/ReadFile/arg1/null";
  const RunTrace rt = obs::rtrace::finalize_trace(std::move(spans), p);

  const std::string text = rt.serialize();
  EXPECT_EQ(text.find('"'), std::string::npos);   // journal-safe: no quoting
  EXPECT_EQ(text.find('\\'), std::string::npos);  // or escaping needed
  EXPECT_EQ(obs::rtrace::digest_of_serialized(text), rt.digest);
  EXPECT_EQ(obs::rtrace::digest_hex(rt.digest).size(), 16u);

  const auto back = RunTrace::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spans, rt.spans);
  EXPECT_EQ(back->digest, rt.digest);
  EXPECT_EQ(back->injected_span, rt.injected_span);
  EXPECT_EQ(back->fault_id, rt.fault_id);
  // Attribution is recomputed from the spans, not shipped: it must agree.
  ASSERT_EQ(back->requests.size(), rt.requests.size());
  for (std::size_t i = 0; i < rt.requests.size(); ++i) {
    EXPECT_EQ(back->requests[i].elapsed_us, rt.requests[i].elapsed_us);
    EXPECT_EQ(back->requests[i].ok, rt.requests[i].ok);
  }
}

TEST(RtraceSerialize, MalformedPayloadsAreRejected) {
  EXPECT_FALSE(RunTrace::parse("").has_value());
  EXPECT_FALSE(RunTrace::parse("v2 0000000000000000 inj=0 fault=-").has_value());
  EXPECT_FALSE(RunTrace::parse("v1 deadbeef").has_value());
  // A span field with the wrong arity fails the whole parse.
  EXPECT_FALSE(RunTrace::parse("v1 0000000000000000 inj=0 fault=-|1:2:3").has_value());
  EXPECT_EQ(obs::rtrace::digest_of_serialized("garbage"), 0u);
  EXPECT_EQ(obs::rtrace::digest_of_serialized(""), 0u);
}

TEST(RtraceMode, StringConversionsRoundTrip) {
  for (const RtraceMode m :
       {RtraceMode::kOff, RtraceMode::kFailures, RtraceMode::kAll}) {
    RtraceMode back = RtraceMode::kOff;
    ASSERT_TRUE(obs::rtrace::rtrace_mode_from_string(
        std::string(obs::rtrace::to_string(m)), &back));
    EXPECT_EQ(back, m);
  }
  RtraceMode out = RtraceMode::kOff;
  EXPECT_FALSE(obs::rtrace::rtrace_mode_from_string("sometimes", &out));
}

// --- satellite: span log and ring eviction under concurrent writers -------

TEST(RtraceConcurrency, PerThreadSpanAndRingWritersStayIsolated) {
  // SpanLog and RingBuffer are documented single-threaded (one run = one
  // simulation); the concurrency contract is one instance per worker thread.
  // Hammer both from parallel workers — TSan must stay quiet because no
  // instance is shared — and check eviction arithmetic on every one.
  constexpr int kThreads = 4;
  constexpr int kPushes = 100;
  constexpr std::size_t kCap = 8;
  std::vector<std::thread> workers;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &failures] {
      obs::SpanLog spans;
      obs::RingBuffer<int> ring;
      ring.set_capacity(kCap);
      for (int i = 1; i <= kPushes; ++i) {
        spans.add("w" + std::to_string(t), sim::TimePoint{},
                  sim::TimePoint{} + sim::Duration::micros(i));
        ring.push(t * 1000 + i);
      }
      if (spans.spans().size() != kPushes) failures[t] = "span count";
      if (ring.size() != kCap || ring.pushed() != kPushes) {
        failures[t] = "ring accounting";
      }
      // Oldest retained element is push kPushes-kCap+1; newest is kPushes.
      if (ring[0] != t * 1000 + kPushes - static_cast<int>(kCap) + 1 ||
          ring[kCap - 1] != t * 1000 + kPushes) {
        failures[t] = "ring eviction order";
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], "") << "worker " << t;
}

TEST(RtraceConcurrency, SharedRingUnderLockEvictsExactly) {
  // When a ring IS shared (the status-board style), writers serialize through
  // a lock; eviction totals must be exact regardless of interleaving.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  obs::RingBuffer<int> ring;
  ring.set_capacity(16);
  std::mutex mu;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ring, &mu, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::lock_guard<std::mutex> lock(mu);
        ring.push(t * kPerThread + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ring.size(), 16u);
}

// --- signature path axis --------------------------------------------------

TEST(RtraceSignature, PathAxisSplitsClustersOnlyWhenPresent) {
  forensics::SignatureKey a;
  a.fault_class = "file-handle:zero";
  a.call_context = "CreateFileA@1#1/89ab";
  a.outcome = "failure";
  a.span = "none";
  a.tier = "db";

  forensics::SignatureKey masked = a;
  masked.path = "00000000aaaaaaaa";
  forensics::SignatureKey outage = a;
  outage.path = "00000000bbbbbbbb";

  // Same fault, same tier — but a different propagation path is a different
  // failure mode, and an absent path (untraced run) is a third.
  EXPECT_NE(forensics::signature_id(masked), forensics::signature_id(outage));
  EXPECT_NE(forensics::signature_id(a), forensics::signature_id(masked));
  EXPECT_EQ(forensics::signature_id(masked), forensics::signature_id(masked));
}

// --- status board ---------------------------------------------------------

TEST(RtraceStatus, TracesJsonReportsTailAndTotal) {
  obs::fleet::StatusBoard board(8);
  for (int i = 0; i < 3; ++i) {
    obs::fleet::TraceEntry e;
    e.fault_id = "db/fault" + std::to_string(i);
    e.tier = "db";
    e.user_outcome = i == 0 ? "outage" : "masked";
    e.digest = obs::rtrace::digest_hex(0xabcd0000u + i);
    e.spans = 12;
    e.requests = 4;
    e.injected = i == 0;
    board.record_trace(e);
  }
  const std::string json = board.traces_json();
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
  EXPECT_NE(json.find("db/fault0"), std::string::npos);
  EXPECT_NE(json.find("\"outage\""), std::string::npos);
  EXPECT_NE(json.find("00000000abcd0002"), std::string::npos);
}

// --- configuration --------------------------------------------------------

TEST(RtraceConfig, ParsesAndSerializesMode) {
  const core::DtsConfig cfg = parse_or_die(kTracedThreeTierConfig);
  EXPECT_EQ(cfg.run.rtrace, RtraceMode::kFailures);

  const std::string text = core::serialize_config(cfg);
  EXPECT_NE(text.find("rtrace = failures"), std::string::npos);
  const core::DtsConfig again = parse_or_die(text);
  EXPECT_EQ(again.run.rtrace, RtraceMode::kFailures);
  EXPECT_EQ(core::serialize_config(again), text);

  std::string error;
  EXPECT_FALSE(core::parse_config(std::string(kTracedThreeTierConfig) +
                                      "rtrace = sometimes\n",
                                  &error)
                   .has_value());
  EXPECT_NE(error.find("rtrace"), std::string::npos);
}

TEST(RtraceConfig, OffModeSerializesLikeThePreRtracePipeline) {
  // `rtrace = off` must be invisible: same parsed config, same serialized
  // text, and therefore the same campaign bytes as a config without the key.
  const std::string untraced =
      std::string(kTracedThreeTierConfig).substr(
          0, std::string(kTracedThreeTierConfig).find("rtrace"));
  const core::DtsConfig plain = parse_or_die(untraced);
  const core::DtsConfig off = parse_or_die(untraced + "rtrace = off\n");
  EXPECT_EQ(off.run.rtrace, RtraceMode::kOff);
  EXPECT_EQ(core::serialize_config(off), core::serialize_config(plain));
}

// --- the traced seed campaign, end to end ---------------------------------

class RtraceCampaignTest : public ::testing::Test {
 protected:
  // One traced, journaled three-tier campaign shared by every end-to-end
  // test (runs once; tests read the in-memory results and the journal file).
  static void SetUpTestSuite() {
    // Per-process journal: ctest runs every case in its own process, each
    // re-running this fixture — a shared path would race under `ctest -j`.
    journal_path_ = new std::string(temp_path(
        "rtrace_journal." + std::to_string(::getpid()) + ".jsonl"));
    std::filesystem::remove(*journal_path_);
    const core::DtsConfig cfg = parse_or_die(kTracedThreeTierConfig);
    core::CampaignOptions opt = cfg.campaign;
    opt.journal_path = *journal_path_;
    set_ = new core::WorkloadSetResult(core::run_workload_set(cfg.run, opt));
  }
  static void TearDownTestSuite() {
    delete journal_path_;
    journal_path_ = nullptr;
    delete set_;
    set_ = nullptr;
  }

  static const core::RunResult* run_for(const std::string& fault_id) {
    for (const auto& run : set_->runs) {
      if (run.fault.id() == fault_id) return &run;
    }
    return nullptr;
  }

  static std::string* journal_path_;
  static core::WorkloadSetResult* set_;
};

std::string* RtraceCampaignTest::journal_path_ = nullptr;
core::WorkloadSetResult* RtraceCampaignTest::set_ = nullptr;

TEST_F(RtraceCampaignTest, EveryRunCarriesATraceThatReconcilesWithTopoStats) {
  ASSERT_EQ(set_->runs.size(), 6u);
  for (const auto& run : set_->runs) {
    ASSERT_TRUE(run.topo.has_value()) << run.fault.id();
    ASSERT_TRUE(run.rtrace.has_value()) << run.fault.id();
    const RunTrace& rt = *run.rtrace;

    // One traced request per offered request, fates matching.
    EXPECT_EQ(static_cast<int>(rt.requests.size()), run.topo->requests_total)
        << run.fault.id();
    int ok = 0;
    std::vector<std::int64_t> ok_latencies;
    for (const auto& req : rt.requests) {
      if (req.ok) {
        ++ok;
        ok_latencies.push_back(req.elapsed_us);
      }
      // Per-request attribution conserves the end-to-end latency.
      std::int64_t attributed = 0;
      for (const auto& tier : req.tiers) attributed += tier.total_us();
      EXPECT_EQ(attributed, req.elapsed_us)
          << run.fault.id() << " request " << req.trace;
    }
    EXPECT_EQ(ok, run.topo->requests_ok) << run.fault.id();

    // The root spans ARE the latencies the topology stats summarize: the
    // nearest-rank p95 over traced successes must reproduce p95_us exactly.
    EXPECT_EQ(nearest_rank(ok_latencies, 0.95), run.topo->p95_us)
        << run.fault.id();
    EXPECT_EQ(nearest_rank(ok_latencies, 0.50), run.topo->p50_us)
        << run.fault.id();
  }
}

TEST_F(RtraceCampaignTest, InjectionStampIsExactlyOneOrNone) {
  for (const auto& run : set_->runs) {
    ASSERT_TRUE(run.rtrace.has_value());
    std::size_t stamped = 0;
    for (const auto& s : run.rtrace->spans) stamped += s.injected ? 1 : 0;
    // The exactly-one invariant: a trace either links its failure to one
    // span or records that the firing landed outside every request — the
    // seed faults all target first invocations, which for sql_server happen
    // during startup, causally BEFORE any request exists.
    EXPECT_EQ(stamped, run.rtrace->injected_span != 0 ? 1u : 0u)
        << run.fault.id();
    EXPECT_EQ(run.rtrace->fault_id, run.fault.id());
  }
}

TEST(RtraceInjection, MidRequestFiringStampsTheInnermostContainingSpan) {
  // FlushFileBuffers is only called from sql_server's query loop, so its
  // first invocation happens while a request is in flight on the db replica:
  // the firing must land inside that request's trace, on the db machine's
  // innermost live span.
  const core::DtsConfig cfg = parse_or_die(kTracedThreeTierConfig);
  inject::FaultSpec fault;
  fault.target_image = cfg.run.workload.target_image;  // sqlservr.exe
  fault.fn = nt::Fn::FlushFileBuffers;
  fault.param_index = 0;
  fault.invocation = 1;
  fault.type = inject::FaultType::kZero;
  fault.tier = "db";

  const core::RunResult run = core::execute_run(cfg.run, fault);
  ASSERT_TRUE(run.rtrace.has_value());
  ASSERT_NE(run.rtrace->injected_span, 0) << "firing landed outside every span";
  const TraceSpan* stamped = nullptr;
  std::size_t count = 0;
  for (const auto& s : run.rtrace->spans) {
    if (s.injected) {
      stamped = &s;
      ++count;
    }
  }
  ASSERT_EQ(count, 1u);
  ASSERT_NE(stamped, nullptr);
  EXPECT_EQ(stamped->id, run.rtrace->injected_span);
  EXPECT_EQ(stamped->tier, "db");
  // The query runs inside the replica's local application check.
  EXPECT_EQ(stamped->name, "app.check");
  // The request that owned the corrupted call is marked injected.
  bool request_linked = false;
  for (const auto& req : run.rtrace->requests) {
    if (req.trace == stamped->trace) request_linked = req.injected;
  }
  EXPECT_TRUE(request_linked);
}

TEST_F(RtraceCampaignTest, ContextNeverLeaksAcrossRequests) {
  // Parent linkage must stay inside one trace even across failover retries,
  // partitions and reconnects: a span parented under another request's span
  // would mean the wire context leaked through a reused connection.
  for (const auto& run : set_->runs) {
    ASSERT_TRUE(run.rtrace.has_value());
    std::map<int, std::set<int>> ids_by_trace;
    for (const auto& s : run.rtrace->spans) ids_by_trace[s.trace].insert(s.id);
    for (const auto& s : run.rtrace->spans) {
      if (s.parent == 0) continue;
      EXPECT_TRUE(ids_by_trace[s.trace].count(s.parent))
          << run.fault.id() << ": span " << s.id << " of trace " << s.trace
          << " parented under foreign span " << s.parent;
    }
  }
}

TEST_F(RtraceCampaignTest, JournalIsV7AndNonMaskedRecordsCarryTraces) {
  std::string error;
  const auto file = exec::read_journal_file(*journal_path_, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(file->version, 7u);
  ASSERT_EQ(file->records.size(), 6u);

  for (const auto& rec : file->records) {
    const core::RunResult* run = run_for(rec.fault_id);
    ASSERT_NE(run, nullptr) << rec.fault_id;
    // `failures` journals the trace for failed runs and every run whose
    // user-visible outcome was not fully masked.
    const bool wanted = run->outcome == core::Outcome::kFailure ||
                        run->topo->user_outcome != "masked";
    EXPECT_EQ(!rec.rtrace.empty(), wanted) << rec.fault_id;
    if (!rec.rtrace.empty()) {
      EXPECT_EQ(obs::rtrace::digest_of_serialized(rec.rtrace),
                run->rtrace->digest)
          << rec.fault_id;
      const auto parsed = RunTrace::parse(rec.rtrace);
      ASSERT_TRUE(parsed.has_value()) << rec.fault_id;
      EXPECT_EQ(parsed->spans, run->rtrace->spans) << rec.fault_id;
    }
  }
}

TEST_F(RtraceCampaignTest, UntracedCampaignStaysV6WithoutRtTrailers) {
  const std::string untraced_cfg =
      std::string(kTracedThreeTierConfig).substr(
          0, std::string(kTracedThreeTierConfig).find("rtrace"));
  const core::DtsConfig cfg = parse_or_die(untraced_cfg);
  core::CampaignOptions opt = cfg.campaign;
  const std::string path = temp_path("rtrace_untraced_journal.jsonl");
  std::filesystem::remove(path);
  opt.journal_path = path;
  const core::WorkloadSetResult set = core::run_workload_set(cfg.run, opt);
  for (const auto& run : set.runs) EXPECT_FALSE(run.rtrace.has_value());

  std::string error;
  const auto file = exec::read_journal_file(path, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_EQ(file->version, 6u);
  for (const auto& rec : file->records) EXPECT_TRUE(rec.rtrace.empty());
}

TEST_F(RtraceCampaignTest, ReplayVerifiesThePropagationPathDigest) {
  std::string error;
  const auto file = exec::read_journal_file(*journal_path_, &error);
  ASSERT_TRUE(file.has_value()) << error;

  for (const auto& rec : file->records) {
    const auto result = forensics::replay_record(*file, rec, {}, &error);
    ASSERT_TRUE(result.has_value()) << rec.fault_id << ": " << error;
    EXPECT_TRUE(result->matches()) << rec.fault_id;
    EXPECT_TRUE(result->rtrace_digest_match) << rec.fault_id;
    if (!rec.rtrace.empty()) {
      // The replayed run rebuilt the same propagation path from scratch.
      EXPECT_NE(result->rtrace_digest, 0u) << rec.fault_id;
      EXPECT_EQ(result->rtrace_digest,
                obs::rtrace::digest_of_serialized(rec.rtrace))
          << rec.fault_id;
    }
  }
}

TEST_F(RtraceCampaignTest, TracedModeIsByteIdenticalAcrossJobs) {
  const core::DtsConfig cfg = parse_or_die(kTracedThreeTierConfig);
  core::CampaignOptions opt = cfg.campaign;
  opt.jobs = 1;
  const std::string serial =
      core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  opt.jobs = 4;
  const std::string parallel =
      core::serialize_workload_set(core::run_workload_set(cfg.run, opt));
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace dts
