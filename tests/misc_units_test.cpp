// Smaller units: event log queries, handle-table behaviour, outcome summary
// strings, netsim details and the app-side Api helpers.
#include <gtest/gtest.h>

#include "apps/winapp.h"
#include "core/outcome.h"
#include "ntsim/event_log.h"
#include "ntsim/handle_table.h"
#include "ntsim/kernel.h"
#include "ntsim/netsim.h"

namespace dts {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(EventLog, QueryBySourceAndTime) {
  nt::EventLog log;
  log.write(TimePoint{} + Duration::seconds(1), nt::EventSeverity::kInformation, "SCM", 7001,
            "running");
  log.write(TimePoint{} + Duration::seconds(2), nt::EventSeverity::kError, "ClusSvc", 1201,
            "restart");
  log.write(TimePoint{} + Duration::seconds(3), nt::EventSeverity::kError, "ClusSvc", 1201,
            "restart again");
  EXPECT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.query("ClusSvc").size(), 2u);
  EXPECT_EQ(log.query("ClusSvc", TimePoint{} + Duration::seconds(3)).size(), 1u);
  EXPECT_EQ(log.count("ClusSvc", 1201), 2u);
  EXPECT_EQ(log.count("ClusSvc", 9999), 0u);
  EXPECT_EQ(log.count("Nobody", 1201), 0u);
  log.clear();
  EXPECT_TRUE(log.entries().empty());
}

TEST(HandleTable, InsertResolveClose) {
  sim::Simulation simu;
  nt::HandleTable table;
  auto ev = std::make_shared<nt::EventObject>(simu, true, false);
  const nt::Handle h = table.insert(ev);
  EXPECT_EQ(h.value % 4, 0u);  // NT-style handle values
  EXPECT_EQ(table.get(h), ev);
  EXPECT_NE(table.get_as<nt::EventObject>(h), nullptr);
  EXPECT_EQ(table.get_as<nt::MutexObject>(h), nullptr);  // wrong type
  EXPECT_EQ(table.open_handles(), 1u);
  EXPECT_TRUE(table.close(h));
  EXPECT_FALSE(table.close(h));
  EXPECT_EQ(table.get(h), nullptr);
}

TEST(HandleTable, HandlesShareObjects) {
  sim::Simulation simu;
  nt::HandleTable table;
  auto ev = std::make_shared<nt::EventObject>(simu, true, false);
  const nt::Handle h1 = table.insert(ev);
  const nt::Handle h2 = table.insert(ev);
  EXPECT_NE(h1.value, h2.value);
  table.close(h1);
  EXPECT_EQ(table.get(h2), ev);  // object lives while any handle remains
}

TEST(Outcome, SummaryStrings) {
  core::RunResult r;
  r.fault = *inject::parse_fault_id("inetinfo.exe", "ReadFile.hFile#1:flip");
  r.activated = true;
  r.outcome = core::Outcome::kFailure;
  r.response_received = false;
  r.response_time = sim::Duration::from_seconds(150.0);
  r.retries = 4;
  const std::string s = r.summary();
  EXPECT_NE(s.find("ReadFile.hFile#1:flip"), std::string::npos);
  EXPECT_NE(s.find("[activated]"), std::string::npos);
  EXPECT_NE(s.find("failure"), std::string::npos);
  EXPECT_NE(s.find("(no response)"), std::string::npos);
  EXPECT_NE(s.find("retries=4"), std::string::npos);

  r.outcome = core::Outcome::kRestartRetrySuccess;
  r.restarts = 1;
  EXPECT_NE(r.summary().find("restart and client request retry"), std::string::npos);
}

TEST(Outcome, ClientReportAggregates) {
  core::ClientReport report;
  EXPECT_FALSE(report.all_ok());  // no requests = not ok
  core::RequestResult ok1;
  ok1.ok = true;
  ok1.attempts = 1;
  core::RequestResult ok2;
  ok2.ok = true;
  ok2.attempts = 3;
  ok2.any_response = true;
  report.requests = {ok1, ok2};
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.total_retries(), 2);
  EXPECT_TRUE(report.any_response());
}

TEST(Net, SendAfterCloseIsDropped) {
  sim::Simulation simu{3};
  nt::net::Network net{simu};
  nt::Machine m{simu, nt::MachineConfig{.name = "target"}};
  std::optional<std::string> got;
  m.register_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    auto listener = net.listen("target", 1000);
    auto sock = co_await listener->accept(c);
    got = co_await sock->recv(c, 64, Duration::seconds(5));
  });
  m.register_program("b.exe", [&](nt::Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await net.connect(c, "target", 1000);
    sock->close();
    sock->send("too late");  // dropped silently
  });
  m.start_process("a.exe", "a.exe");
  m.start_process("b.exe", "b.exe");
  simu.run_until(simu.now() + Duration::seconds(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "");  // EOF, no data
}

TEST(Net, AcceptTimesOut) {
  sim::Simulation simu{3};
  nt::net::Network net{simu};
  nt::Machine m{simu, nt::MachineConfig{.name = "target"}};
  bool timed_out = false;
  m.register_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    auto listener = net.listen("target", 1000);
    auto sock = co_await listener->accept(c, Duration::seconds(2));
    timed_out = (sock == nullptr);
  });
  m.start_process("a.exe", "a.exe");
  simu.run_until(simu.now() + Duration::seconds(10));
  EXPECT_TRUE(timed_out);
}

TEST(Net, RecvExactlyAssemblesChunks) {
  sim::Simulation simu{3};
  nt::net::Network net{simu};
  nt::Machine m{simu, nt::MachineConfig{.name = "target"}};
  std::optional<std::string> got;
  m.register_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    auto listener = net.listen("target", 1000);
    auto sock = co_await listener->accept(c);
    got = co_await sock->recv_exactly(c, 10, Duration::seconds(10));
  });
  m.register_program("b.exe", [&](nt::Ctx c) -> sim::Task {
    co_await nt::sleep_in_sim(c, Duration::millis(10));
    auto sock = co_await net.connect(c, "target", 1000);
    for (const char* part : {"01", "234", "56789xx"}) {
      sock->send(part);
      co_await nt::sleep_in_sim(c, Duration::millis(100));
    }
    co_await nt::sleep_in_sim(c, Duration::seconds(2));
  });
  m.start_process("a.exe", "a.exe");
  m.start_process("b.exe", "b.exe");
  simu.run_until(simu.now() + Duration::seconds(10));
  EXPECT_EQ(got, "0123456789");
}

TEST(Api, HelpersRoundTrip) {
  sim::Simulation simu{9};
  nt::Machine m{simu, nt::MachineConfig{.name = "target"}};
  bool checked = false;
  m.register_program("a.exe", [&](nt::Ctx c) -> sim::Task {
    apps::Api api(c);
    const nt::Ptr s = api.str("hello");
    EXPECT_EQ(api.read_str(s), "hello");
    const nt::Ptr b = api.buf(8);
    api.mem().write_u32(b, 0xAB);
    EXPECT_EQ(api.read_u32(b), 0xABu);
    const auto t0 = c.m().sim().now();
    co_await api.cpu(Duration::millis(250));
    EXPECT_GE(c.m().sim().now() - t0, Duration::millis(250));
    // read_file_syscall: missing file -> nullopt; present file -> content.
    EXPECT_EQ(co_await apps::read_file_syscall(api, "C:\\missing.txt"), std::nullopt);
    c.m().fs().put_file("C:\\x.txt", "payload");
    EXPECT_EQ(co_await apps::read_file_syscall(api, "C:\\x.txt"), "payload");
    checked = true;
  });
  m.start_process("a.exe", "a.exe");
  simu.run_until(simu.now() + Duration::seconds(30));
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace dts
