// Containment fuzzing: every implemented KERNEL32 function is called with
// random argument words. The invariant under test is the simulator's core
// safety property — a corrupted call may fail, hang the simulated thread or
// crash the simulated process, but the HOST process must never crash, leak
// into other simulated state, or wedge the event loop.
//
// This is exactly the space DTS explores (it corrupts one argument; we
// corrupt all of them), so surviving this sweep means no fault list can take
// the tool itself down.
#include <gtest/gtest.h>

#include "ntsim/kernel.h"
#include "ntsim/kernel32.h"

namespace dts::nt {
namespace {

using sim::Duration;

class SyscallFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyscallFuzz, RandomArgumentsAreContained) {
  const auto& reg = Kernel32Registry::instance();
  sim::Rng rng{GetParam()};

  for (std::uint16_t id = 0; id < kImplementedFunctionCount; ++id) {
    const Fn fn = static_cast<Fn>(id);
    const FunctionInfo& info = reg.info(fn);
    // Three random-argument calls per function per seed.
    for (int round = 0; round < 3; ++round) {
      sim::Simulation simu{rng.next()};
      Machine m{simu, MachineConfig{.name = "target"}};
      m.fs().put_file("C:\\data\\seed.txt", "contents");

      std::vector<Word> args;
      for (int i = 0; i < info.param_count(); ++i) {
        // Mix of the corruption values DTS uses and fully random words.
        switch (rng.uniform(0, 3)) {
          case 0: args.push_back(0); break;
          case 1: args.push_back(0xFFFFFFFF); break;
          case 2: args.push_back(static_cast<Word>(rng.next())); break;
          default: args.push_back(static_cast<Word>(rng.uniform(0, 0x10000))); break;
        }
      }

      m.register_program("fuzz.exe", [fn, args](Ctx c) -> sim::Task {
        // A couple of real allocations so low random addresses can hit
        // something live occasionally.
        (void)c.process->mem().alloc(64);
        (void)c.process->mem().alloc(4096);
        (void)co_await c.m().k32().call(c, fn, args);
      });
      const Pid pid = m.start_process("fuzz.exe", "fuzz.exe");
      ASSERT_NE(pid, 0u);
      // Bounded run: blocked-forever calls simply leave the process alive.
      simu.run_until(simu.now() + Duration::seconds(30));
      // The machine survives and remains usable: start a healthy process
      // afterwards and watch it complete.
      bool healthy_ran = false;
      m.register_program("healthy.exe", [&healthy_ran](Ctx c) -> sim::Task {
        (void)co_await c.m().k32().call(c, Fn::GetCurrentProcessId);
        healthy_ran = true;
      });
      m.start_process("healthy.exe", "healthy.exe");
      simu.run_until(simu.now() + Duration::seconds(5));
      ASSERT_TRUE(healthy_ran) << info.name << " wedged the machine";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyscallFuzz, ::testing::Values(1, 2, 3, 4));

// Error-return injection fuzz (src/fault/ oserror model): a hook that forces
// random completion actions — forced error returns with arbitrary Win32
// error codes, result rewrites, delays — onto every KERNEL32 call. The
// containment invariant is the same as for argument corruption: the host
// survives and the machine stays usable whatever error code the "OS" claims.
// kDrop is exercised separately with a bounded run (it blocks the caller
// forever by design).
TEST(SyscallFuzzErrorReturns, ForcedCompletionActionsAreContained) {
  struct ErrorHook : SyscallHook {
    sim::Rng rng{0};
    void on_call(const Process&, CallRecord& rec) override {
      switch (rng.uniform(0, 4)) {
        case 0:
          rec.action = CallRecord::Action::kForceResult;
          rec.forced_result = rng.chance(0.5) ? 0 : static_cast<Word>(rng.next());
          // Arbitrary 32-bit error codes, not just the catalogued ones: a
          // hostile fault list must not find an unconstrained code path.
          rec.forced_error = static_cast<Dword>(rng.next());
          break;
        case 1: rec.action = CallRecord::Action::kZeroResult; break;
        case 2: rec.action = CallRecord::Action::kFlipResult; break;
        case 3:
          rec.action = CallRecord::Action::kDelay;
          rec.delay_us = static_cast<std::uint32_t>(rng.uniform(0, 200000));
          break;
        default: break;  // kNone: let the call through
      }
    }
  };

  const auto& reg = Kernel32Registry::instance();
  for (std::uint64_t seed = 200; seed < 204; ++seed) {
    sim::Rng rng{seed};
    sim::Simulation simu{seed};
    Machine m{simu, MachineConfig{.name = "target"}};
    m.fs().put_file("C:\\data\\x.txt", "payload");
    ErrorHook hook;
    hook.rng = sim::Rng{seed * 31 + 1};
    m.k32().set_hook(&hook);

    std::vector<Fn> script;
    for (int i = 0; i < 40; ++i) {
      const Fn fn = static_cast<Fn>(rng.uniform(0, kImplementedFunctionCount - 1));
      if (fn == Fn::ExitProcess || fn == Fn::ExitThread) continue;
      script.push_back(fn);
    }
    m.register_program("fuzz.exe", [script, &reg](Ctx c) -> sim::Task {
      for (Fn fn : script) {
        std::vector<Word> args(static_cast<std::size_t>(reg.info(fn).param_count()), 1);
        (void)co_await c.m().k32().call(c, fn, args);
      }
    });
    m.start_process("fuzz.exe", "fuzz.exe");
    simu.run_until(simu.now() + Duration::seconds(60));

    // Healthy process afterwards, with the hook removed: the machine is not
    // wedged by whatever the forced completions did.
    m.k32().set_hook(nullptr);
    bool healthy_ran = false;
    m.register_program("healthy.exe", [&healthy_ran](Ctx c) -> sim::Task {
      (void)co_await c.m().k32().call(c, Fn::GetCurrentProcessId);
      healthy_ran = true;
    });
    m.start_process("healthy.exe", "healthy.exe");
    simu.run_until(simu.now() + Duration::seconds(5));
    ASSERT_TRUE(healthy_ran) << "seed " << seed << " wedged the machine";
  }
}

TEST(SyscallFuzzErrorReturns, DroppedCompletionsOnlyBlockTheCaller) {
  struct DropHook : SyscallHook {
    void on_call(const Process& proc, CallRecord& rec) override {
      // Drop every call of the fuzz target; other processes run untouched.
      if (proc.image() == "fuzz.exe") rec.action = CallRecord::Action::kDrop;
    }
  };
  sim::Simulation simu{5};
  Machine m{simu, MachineConfig{.name = "target"}};
  DropHook hook;
  m.k32().set_hook(&hook);

  bool past_drop = false;
  m.register_program("fuzz.exe", [&past_drop](Ctx c) -> sim::Task {
    (void)co_await c.m().k32().call(c, Fn::GetCurrentProcessId);
    past_drop = true;  // must never execute: the completion was dropped
  });
  m.start_process("fuzz.exe", "fuzz.exe");

  bool healthy_ran = false;
  m.register_program("healthy.exe", [&healthy_ran](Ctx c) -> sim::Task {
    (void)co_await c.m().k32().call(c, Fn::GetCurrentProcessId);
    healthy_ran = true;
  });
  m.start_process("healthy.exe", "healthy.exe");
  simu.run_until(simu.now() + Duration::seconds(30));
  EXPECT_FALSE(past_drop);
  EXPECT_TRUE(healthy_ran);
}

TEST(SyscallFuzzSequence, RandomCallSequencesAreContained) {
  // Longer random sequences inside one process: state built up by earlier
  // calls (handles, heaps, critical sections) feeds later corrupted calls.
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    sim::Rng rng{seed};
    sim::Simulation simu{seed};
    Machine m{simu, MachineConfig{.name = "target"}};
    m.fs().put_file("C:\\data\\x.txt", "payload");

    // Pre-generate the call script (deterministic per seed).
    struct Call {
      Fn fn;
      std::vector<Word> args;
    };
    std::vector<Call> script;
    const auto& reg = Kernel32Registry::instance();
    for (int i = 0; i < 60; ++i) {
      const Fn fn = static_cast<Fn>(rng.uniform(0, kImplementedFunctionCount - 1));
      // Skip the two calls that intentionally never return.
      if (fn == Fn::ExitProcess || fn == Fn::ExitThread) continue;
      Call call;
      call.fn = fn;
      for (int p = 0; p < reg.info(fn).param_count(); ++p) {
        call.args.push_back(rng.chance(0.3) ? static_cast<Word>(rng.next())
                                            : static_cast<Word>(rng.uniform(0, 64)));
      }
      script.push_back(std::move(call));
    }

    m.register_program("fuzz.exe", [script](Ctx c) -> sim::Task {
      for (const auto& call : script) {
        (void)co_await c.m().k32().call(c, call.fn, call.args);
      }
    });
    m.start_process("fuzz.exe", "fuzz.exe");
    simu.run_until(simu.now() + Duration::seconds(120));
    // Reaching here without a host crash or an exception is the pass.
    SUCCEED();
  }
}

}  // namespace
}  // namespace dts::nt
