// Deterministic tests of the report renderers using hand-built campaign
// results (no simulation runs): percentage math, weighted merges, the
// common-fault filter, and the Fig. 4 timing rows.
#include <gtest/gtest.h>

#include "core/report.h"

namespace dts::core {
namespace {

RunResult make_run(const std::string& target_image, const std::string& fault_id,
                   Outcome outcome, double seconds, int restarts = 0, int retries = 0,
                   bool activated = true, bool response = false) {
  RunResult r;
  r.fault = *inject::parse_fault_id(target_image, fault_id);
  r.activated = activated;
  r.outcome = outcome;
  r.response_time = sim::Duration::from_seconds(seconds);
  r.restarts = restarts;
  r.retries = retries;
  r.client_finished = true;
  r.response_received = response;
  return r;
}

WorkloadSetResult make_set(const std::string& workload, mw::MiddlewareKind m,
                           std::vector<RunResult> runs) {
  WorkloadSetResult s;
  s.base_config.workload = workload_by_name(workload);
  s.base_config.middleware = m;
  s.runs = std::move(runs);
  for (const auto& r : s.runs) {
    if (r.activated) s.activated_functions.insert(r.fault.fn);
  }
  return s;
}

TEST(Report, PercentagesAndFailureSplit) {
  auto s = make_set("IIS", mw::MiddlewareKind::kNone,
                    {make_run("inetinfo.exe", "ReadFile.hFile#1:zero",
                              Outcome::kNormalSuccess, 19.0),
                     make_run("inetinfo.exe", "ReadFile.hFile#1:ones",
                              Outcome::kFailure, 50.0, 0, 4, true, /*response=*/true),
                     make_run("inetinfo.exe", "ReadFile.hFile#1:flip",
                              Outcome::kFailure, 150.0, 0, 4, true, /*response=*/false),
                     make_run("inetinfo.exe", "ReadFile.lpBuffer#1:zero",
                              Outcome::kRetrySuccess, 37.0, 0, 1),
                     // Not activated: excluded from every denominator.
                     make_run("inetinfo.exe", "Sleep.dwMilliseconds#1:ones",
                              Outcome::kNormalSuccess, 19.0, 0, 0, /*activated=*/false)});
  EXPECT_EQ(s.activated_faults(), 4u);
  EXPECT_DOUBLE_EQ(s.percent(Outcome::kFailure), 50.0);
  EXPECT_DOUBLE_EQ(s.percent(Outcome::kNormalSuccess), 25.0);
  EXPECT_DOUBLE_EQ(s.percent(Outcome::kRetrySuccess), 25.0);
  EXPECT_EQ(s.failures_with_response(), 1u);
  EXPECT_EQ(s.failures_without_response(), 1u);
  EXPECT_EQ(s.label(), "IIS/none");
}

TEST(Report, WeightedMergeMatchesPaperDefinition) {
  // "The Apache1 and Apache2 results are weighted based on the relative
  // number of activated faults": merging counts and dividing by the merged
  // activated total is exactly that weighting.
  auto a1 = make_set("Apache1", mw::MiddlewareKind::kNone,
                     {make_run("apache.exe", "CloseHandle.hObject#1:zero",
                               Outcome::kFailure, 150.0),
                      make_run("apache.exe", "CloseHandle.hObject#1:ones",
                               Outcome::kNormalSuccess, 14.0)});
  std::vector<RunResult> worker_runs;
  for (int i = 0; i < 6; ++i) {
    worker_runs.push_back(make_run("apache_child.exe",
                                   i % 2 == 0 ? "ReadFile.hFile#1:zero"
                                              : "ReadFile.hFile#1:ones",
                                   Outcome::kNormalSuccess, 14.0));
  }
  auto a2 = make_set("Apache2", mw::MiddlewareKind::kNone, std::move(worker_runs));

  const WorkloadSetResult* both[] = {&a1, &a2};
  const OutcomeDistribution merged = merge_distributions(both);
  EXPECT_EQ(merged.activated, 8u);
  // 1 failure of 8 activated = 12.5% — a1 alone would say 50%.
  EXPECT_DOUBLE_EQ(merged.percent(Outcome::kFailure), 12.5);
}

TEST(Report, CommonFaultFilterUsesFunctionParamType) {
  // Same function/parameter/type on different images is the SAME fault for
  // Table 2's comparison; a different corruption type is not.
  auto a = *inject::parse_fault_id("apache.exe", "ReadFile.hFile#1:zero");
  auto b = *inject::parse_fault_id("inetinfo.exe", "ReadFile.hFile#1:zero");
  auto c = *inject::parse_fault_id("inetinfo.exe", "ReadFile.hFile#1:flip");
  EXPECT_EQ(fault_key(a), fault_key(b));
  EXPECT_NE(fault_key(a), fault_key(c));
}

TEST(Report, Table2RestrictsToCommonFaults) {
  // Apache1 activates {CloseHandle.zero}; Apache2 {ReadFile.zero};
  // IIS {ReadFile.zero, Sleep.ones}. Common = {ReadFile.zero} only.
  auto a1 = make_set("Apache1", mw::MiddlewareKind::kNone,
                     {make_run("apache.exe", "CloseHandle.hObject#1:zero",
                               Outcome::kFailure, 150.0)});
  auto a2 = make_set("Apache2", mw::MiddlewareKind::kNone,
                     {make_run("apache_child.exe", "ReadFile.hFile#1:zero",
                               Outcome::kRetrySuccess, 37.0, 0, 1)});
  auto iis = make_set("IIS", mw::MiddlewareKind::kNone,
                      {make_run("inetinfo.exe", "ReadFile.hFile#1:zero",
                                Outcome::kFailure, 150.0),
                       make_run("inetinfo.exe", "Sleep.dwMilliseconds#1:ones",
                                Outcome::kFailure, 150.0)});
  std::vector<WorkloadSetResult> sets{a1, a2, iis};
  const std::string table = table2_common_faults(sets);
  // Apache1 contributes no common faults; Apache2 contributes 1 (retry);
  // IIS is 1/1 failure on the common set (the Sleep fault is excluded).
  EXPECT_NE(table.find("Apache1+Apache2"), std::string::npos);
  // Row: "none  Apache1  0 ..." — activated 0 for Apache1.
  const auto a1_row = table.find("Apache1 ");
  ASSERT_NE(a1_row, std::string::npos);
  EXPECT_NE(table.substr(a1_row, 40).find(" 0 "), std::string::npos);
  // IIS 100% failure on the single common fault.
  const auto iis_row = table.find("\nnone      IIS");
  ASSERT_NE(iis_row, std::string::npos);
  EXPECT_NE(table.substr(iis_row, 80).find("100.00%"), std::string::npos);
}

TEST(Report, TimingRowsSplitFailuresAndOmitNoResponse) {
  auto s = make_set("IIS", mw::MiddlewareKind::kMscs,
                    {make_run("inetinfo.exe", "ReadFile.hFile#1:zero",
                              Outcome::kNormalSuccess, 19.0),
                     make_run("inetinfo.exe", "ReadFile.hFile#1:ones",
                              Outcome::kNormalSuccess, 21.0),
                     make_run("inetinfo.exe", "ReadFile.hFile#1:flip",
                              Outcome::kRestartSuccess, 29.0, 1),
                     make_run("inetinfo.exe", "ReadFile.lpBuffer#1:zero",
                              Outcome::kFailure, 44.0, 0, 4, true, /*response=*/true),
                     make_run("inetinfo.exe", "ReadFile.lpBuffer#1:ones",
                              Outcome::kFailure, 150.0, 0, 4, true, /*response=*/false)});
  const auto rows = response_time_rows(s);
  ASSERT_EQ(rows.size(), 3u);  // Normal, Restart, Failure(wrong response)
  EXPECT_EQ(rows[0].outcome_label, "Normal");
  EXPECT_EQ(rows[0].seconds.n, 2u);
  EXPECT_DOUBLE_EQ(rows[0].seconds.mean, 20.0);
  EXPECT_EQ(rows[1].outcome_label, "Restart");
  EXPECT_EQ(rows[2].outcome_label, "Failure (wrong response)");
  EXPECT_EQ(rows[2].seconds.n, 1u);  // the no-response failure is omitted
  EXPECT_DOUBLE_EQ(rows[2].seconds.mean, 44.0);
}

TEST(Report, CsvHasPerRequestColumns) {
  auto run = make_run("inetinfo.exe", "ReadFile.hFile#1:zero", Outcome::kRetrySuccess,
                      37.0, 0, 1);
  RequestResult req1;
  req1.ok = true;
  req1.attempts = 2;
  RequestResult req2;
  req2.ok = true;
  req2.attempts = 1;
  run.requests = {req1, req2};
  auto s = make_set("IIS", mw::MiddlewareKind::kNone, {run});
  const std::string csv = runs_csv(s);
  EXPECT_NE(csv.find("ok|ok"), std::string::npos);
  EXPECT_NE(csv.find("2|1"), std::string::npos);
}

TEST(Report, Fig5FiltersToWatchdSets) {
  auto watchd = make_set("SQL", mw::MiddlewareKind::kWatchd,
                         {make_run("sqlservr.exe", "ReadFileEx.hFile#1:zero",
                                   Outcome::kRestartSuccess, 48.0, 1)});
  watchd.base_config.watchd_version = mw::WatchdVersion::kV2;
  auto mscs = make_set("SQL", mw::MiddlewareKind::kMscs,
                       {make_run("sqlservr.exe", "ReadFileEx.hFile#1:zero",
                                 Outcome::kFailure, 150.0)});
  std::vector<WorkloadSetResult> sets{watchd, mscs};
  const std::string fig5 = fig5_watchd_versions(sets);
  EXPECT_NE(fig5.find("SQL/Watchd2"), std::string::npos);
  EXPECT_EQ(fig5.find("MSCS"), std::string::npos);  // non-watchd sets excluded
}

}  // namespace
}  // namespace dts::core
